#include <gtest/gtest.h>

#include "decide/classifier.hpp"
#include "lcl/catalog.hpp"
#include "lcl/compile.hpp"
#include "lcl/serialize.hpp"
#include "lcl/verifier.hpp"
#include "test_util.hpp"

namespace lclpath {
namespace {

using testing::all_valid_labelings;

TEST(Problem, ConstraintsAndDescribe) {
  PairwiseProblem p = catalog::coloring(3);
  EXPECT_TRUE(p.node_ok(0, 0));
  EXPECT_TRUE(p.edge_ok(0, 1));
  EXPECT_FALSE(p.edge_ok(1, 1));
  EXPECT_TRUE(p.is_orientation_symmetric());
  EXPECT_NE(p.describe().find("3-coloring"), std::string::npos);
}

TEST(Problem, ReversedSwapsEdges) {
  PairwiseProblem p = catalog::agreement();
  PairwiseProblem r = p.reversed();
  for (Label a = 0; a < p.num_outputs(); ++a) {
    for (Label b = 0; b < p.num_outputs(); ++b) {
      EXPECT_EQ(p.edge_ok(a, b), r.edge_ok(b, a));
    }
  }
}

TEST(Problem, FirstAndLastNodeRules) {
  Alphabet in({"_"});
  Alphabet out({"s", "m", "t"});
  PairwiseProblem p("endpoints", in, out, Topology::kDirectedPath);
  p.allow_node("_", "m");
  p.allow_node("_", "t");
  p.allow_node_first("_", "s");
  for (Label a = 0; a < 3; ++a)
    for (Label b = 0; b < 3; ++b) p.allow_edge(a, b);
  p.forbid_last(out.at("m"));
  // s only at the start, m never at the end.
  EXPECT_TRUE(verify_pairwise(p, {0, 0, 0}, {0, 1, 2}).ok);
  EXPECT_FALSE(verify_pairwise(p, {0, 0, 0}, {1, 1, 2}).ok);  // m at start
  EXPECT_FALSE(verify_pairwise(p, {0, 0, 0}, {0, 1, 1}).ok);  // m at end
  EXPECT_FALSE(verify_pairwise(p, {0, 0, 0}, {0, 0, 2}).ok);  // s in middle
  // The DP respects both.
  const auto solved = solve_by_dp(p, {0, 0, 0});
  ASSERT_TRUE(solved.has_value());
  EXPECT_TRUE(verify_pairwise(p, {0, 0, 0}, *solved).ok);
  EXPECT_EQ((*solved)[0], out.at("s"));
}

TEST(Verifier, ColoringOnCycles) {
  PairwiseProblem p = catalog::coloring(3);
  EXPECT_TRUE(verify_pairwise(p, {0, 0, 0}, {0, 1, 2}).ok);
  EXPECT_FALSE(verify_pairwise(p, {0, 0, 0}, {0, 1, 1}).ok);
  // Wrap edge: 0 1 0 closes 0 -> 0 on a cycle.
  EXPECT_FALSE(verify_pairwise(p, {0, 0, 0, 0}, {0, 1, 0, 0}).ok);
  PairwiseProblem path = catalog::coloring(3, Topology::kDirectedPath);
  EXPECT_TRUE(verify_pairwise(path, {0, 0, 0}, {0, 1, 0}).ok);
}

TEST(Verifier, DpMatchesBruteForceOnRandomProblems) {
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    // Random small problem.
    const std::size_t alpha = 1 + rng.next_below(2);
    const std::size_t beta = 1 + rng.next_below(3);
    Alphabet in, out;
    for (std::size_t i = 0; i < alpha; ++i) in.add("i" + std::to_string(i));
    for (std::size_t o = 0; o < beta; ++o) out.add("o" + std::to_string(o));
    const Topology topology =
        rng.next_bool() ? Topology::kDirectedCycle : Topology::kDirectedPath;
    PairwiseProblem p("rnd", in, out, topology);
    for (Label i = 0; i < alpha; ++i)
      for (Label o = 0; o < beta; ++o)
        if (rng.next_bool(2, 3)) p.allow_node(i, o);
    for (Label a = 0; a < beta; ++a)
      for (Label b = 0; b < beta; ++b)
        if (rng.next_bool(2, 3)) p.allow_edge(a, b);

    const std::size_t n = 1 + rng.next_below(5);
    Word inputs;
    for (std::size_t v = 0; v < n; ++v) {
      inputs.push_back(static_cast<Label>(rng.next_below(alpha)));
    }
    const auto brute = all_valid_labelings(p, inputs);
    const auto dp = solve_by_dp(p, inputs);
    ASSERT_EQ(dp.has_value(), !brute.empty())
        << "trial " << trial << " topology " << to_string(topology);
    if (dp) {
      EXPECT_TRUE(verify_pairwise(p, inputs, *dp).ok);
      // Lexicographically smallest.
      EXPECT_EQ(*dp, brute.front());
    }
  }
}

TEST(Verifier, CompleteByDpRespectsFixedPositions) {
  PairwiseProblem p = catalog::coloring(3, Topology::kDirectedPath);
  Word inputs(6, 0);
  std::vector<std::optional<Label>> fixed(6);
  fixed[0] = 2;
  fixed[5] = 2;
  const auto completion = complete_by_dp(p, inputs, fixed);
  ASSERT_TRUE(completion.has_value());
  EXPECT_EQ((*completion)[0], 2u);
  EXPECT_EQ((*completion)[5], 2u);
  EXPECT_TRUE(verify_pairwise(p, inputs, *completion).ok);
}

TEST(Verifier, LocallyConsistentAt) {
  PairwiseProblem p = catalog::coloring(2);
  const Word in{0, 0, 0, 0};
  const Word out{0, 1, 1, 1};
  EXPECT_TRUE(locally_consistent_at(p, in, out, 1, true));
  EXPECT_FALSE(locally_consistent_at(p, in, out, 2, true));
  // The wrap edge out[3] = 1 -> out[0] = 0 is proper, so index 0 is fine.
  EXPECT_TRUE(locally_consistent_at(p, in, out, 0, true));
  // On a path, index 0 has no predecessor check at all.
  EXPECT_TRUE(locally_consistent_at(p, in, {0, 1, 0, 1}, 0, false));
}

TEST(Catalog, AgreementSemantics) {
  PairwiseProblem p = catalog::agreement();
  const Label sa = p.inputs().at("sa");
  const Label zero = p.inputs().at("0");
  const Label SA = p.outputs().at("Sa");
  const Label A = p.outputs().at("A");
  const Label E = p.outputs().at("E");
  // Single marker: the secret propagates.
  EXPECT_TRUE(verify_pairwise(p, {sa, zero, zero}, {SA, A, A}).ok);
  // No marker: all-E is fine, mixed is not.
  EXPECT_TRUE(verify_pairwise(p, {zero, zero, zero}, {E, E, E}).ok);
  EXPECT_FALSE(verify_pairwise(p, {zero, zero, zero}, {E, A, E}).ok);
  // Marker present: E impossible anywhere.
  EXPECT_FALSE(verify_pairwise(p, {sa, zero, zero}, {SA, E, E}).ok);
  // The b-secret cannot follow an sa marker.
  const Label B = p.outputs().at("B");
  EXPECT_FALSE(verify_pairwise(p, {sa, zero, zero}, {SA, B, B}).ok);
}

TEST(Catalog, ValidationCatalogShapes) {
  const auto entries = catalog::validation_catalog();
  EXPECT_GE(entries.size(), 12u);
  for (const auto& e : entries) {
    EXPECT_GE(e.problem.num_outputs(), 1u) << e.problem.name();
    EXPECT_GE(e.problem.num_inputs(), 1u) << e.problem.name();
  }
}

TEST(Serialize, RoundTripsEveryCatalogProblem) {
  for (const auto& entry : catalog::validation_catalog()) {
    const std::string text = serialize(entry.problem);
    const PairwiseProblem parsed = parse_problem(text);
    EXPECT_EQ(parsed, entry.problem) << entry.problem.name();
    EXPECT_EQ(parsed.name(), entry.problem.name());
  }
}

TEST(Serialize, RoundTripsEndpointConstraints) {
  // `first` / `last` lines keep path-endpoint constraints lossless.
  PairwiseProblem p = catalog::coloring(3, Topology::kDirectedPath);
  p.allow_node_first("_", "c0");
  p.allow_node_first("_", "c1");
  p.forbid_last(2);
  const std::string text = serialize(p);
  EXPECT_NE(text.find("first _ c0"), std::string::npos);
  EXPECT_NE(text.find("last c0 c1"), std::string::npos);
  const PairwiseProblem parsed = parse_problem(text);
  EXPECT_EQ(parsed, p);
  EXPECT_TRUE(parsed.has_first_constraint());
  EXPECT_FALSE(parsed.last_ok(2));
}

TEST(Serialize, ParsesConcatenatedProblems) {
  const std::string text = serialize(catalog::coloring(3)) + "\n# comment\n\n" +
                           serialize(catalog::maximal_independent_set()) +
                           "  # indented trailing comment\n";
  const std::vector<PairwiseProblem> problems = parse_problems(text);
  ASSERT_EQ(problems.size(), 2u);
  EXPECT_EQ(problems[0], catalog::coloring(3));
  EXPECT_EQ(problems[1], catalog::maximal_independent_set());
  EXPECT_TRUE(parse_problems(std::string("# only comments\n\n")).empty());
  EXPECT_THROW(parse_problems(std::string("inputs a\noutputs x\nnode a x\n")),
               std::invalid_argument);
}

TEST(Serialize, MultipleLastLinesAccumulate) {
  PairwiseProblem p = catalog::coloring(3, Topology::kDirectedPath);
  p.forbid_last(2);
  std::string text = serialize(p);
  // Split "last c0 c1" into two lines; the union must round-trip the same.
  const std::size_t at = text.find("last c0 c1");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 10, "last c0\nlast c1");
  EXPECT_EQ(parse_problem(text), p);
}

TEST(Serialize, RandomizedRoundTripPreservesIdentityAndClass) {
  // Property sweep: randomized problems — including path problems with
  // `first`/`last` endpoint constraints, the lines PR 1 added — must
  // survive serialize -> parse_problems with identical canonical
  // key/hash and identical classification.
  Rng rng(424242);
  const Topology topologies[] = {Topology::kDirectedCycle, Topology::kDirectedPath,
                                 Topology::kUndirectedCycle, Topology::kUndirectedPath};
  std::string concatenated;
  std::vector<PairwiseProblem> originals;
  for (std::size_t trial = 0; trial < 24; ++trial) {
    const Topology topology = topologies[trial % 4];
    const bool undirected = !is_directed(topology);
    const std::size_t alpha = 1 + rng.next_below(2);
    const std::size_t beta = 2 + rng.next_below(2);
    Alphabet in;
    for (std::size_t i = 0; i < alpha; ++i) in.add("i" + std::to_string(i));
    Alphabet out;
    for (std::size_t o = 0; o < beta; ++o) out.add("o" + std::to_string(o));
    PairwiseProblem p("rt#" + std::to_string(trial), in, out, topology);
    for (Label i = 0; i < alpha; ++i) {
      p.allow_node(i, static_cast<Label>(rng.next_below(beta)));
      for (Label o = 0; o < beta; ++o) {
        if (rng.next_bool()) p.allow_node(i, o);
      }
    }
    for (Label a = 0; a < beta; ++a) {
      for (Label b = undirected ? a : Label{0}; b < beta; ++b) {
        if (rng.next_bool(2, 3)) {
          p.allow_edge(a, b);
          if (undirected) p.allow_edge(b, a);
        }
      }
    }
    if (!is_cycle(topology) && rng.next_bool()) {
      // Endpoint constraints only exist on paths.
      p.allow_node_first(static_cast<Label>(rng.next_below(alpha)),
                         static_cast<Label>(rng.next_below(beta)));
      p.forbid_last(static_cast<Label>(rng.next_below(beta)));
    }
    concatenated += serialize(p) + "\n";
    originals.push_back(std::move(p));
  }

  const std::vector<PairwiseProblem> parsed = parse_problems(concatenated);
  ASSERT_EQ(parsed.size(), originals.size());
  for (std::size_t i = 0; i < originals.size(); ++i) {
    SCOPED_TRACE(originals[i].name());
    EXPECT_EQ(parsed[i], originals[i]);
    EXPECT_EQ(canonical_key(parsed[i]), canonical_key(originals[i]));
    EXPECT_EQ(canonical_hash(parsed[i]), canonical_hash(originals[i]));
    const ComplexityClass before = classify(originals[i]).complexity();
    const ComplexityClass after = classify(parsed[i]).complexity();
    EXPECT_EQ(before, after) << to_string(before) << " vs " << to_string(after);
  }
}

TEST(Serialize, RejectsMalformedInput) {
  EXPECT_THROW(parse_problem("lcl x\nend\n"), std::invalid_argument);
  EXPECT_THROW(parse_problem("inputs a\noutputs x\nnode b x\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_problem("inputs a\noutputs x\ntopology nonsense\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_problem("inputs a\noutputs x\n"), std::invalid_argument);
}

TEST(Compile, Distance2ColoringWindows) {
  // Distance-2 3-coloring as a radius-1 general problem: outputs in the
  // window must be pairwise distinct.
  Alphabet in({"_"});
  Alphabet out({"c0", "c1", "c2"});
  GeneralProblem g("dist2-3col", in, out, 1, Topology::kDirectedCycle);
  g.allow_where([](const WindowConstraint& w) {
    for (std::size_t i = 0; i < w.outputs.size(); ++i) {
      for (std::size_t j = i + 1; j < w.outputs.size(); ++j) {
        if (w.outputs[i] == w.outputs[j]) return false;
      }
    }
    return true;
  });
  const CompiledProblem compiled = compile_to_pairwise(g);
  // 3 * 2 * 1 = 6 acceptable windows.
  EXPECT_EQ(compiled.pairwise.num_outputs(), 6u);

  // An original valid labeling encodes to a valid compiled labeling.
  const Word inputs(6, 0);
  const Word outputs{0, 1, 2, 0, 1, 2};
  ASSERT_TRUE(verify_general(g, inputs, outputs).ok);
  const Word encoded = compiled.encode(g, inputs, outputs);
  EXPECT_TRUE(verify_pairwise(compiled.pairwise, inputs, encoded).ok);
  EXPECT_EQ(compiled.decode(encoded), outputs);

  // And solving the compiled problem yields a valid original labeling.
  const auto solved = solve_by_dp(compiled.pairwise, inputs);
  ASSERT_TRUE(solved.has_value());
  EXPECT_TRUE(verify_general(g, inputs, compiled.decode(*solved)).ok);

  // Distance-2 coloring is impossible on a 4-cycle with 3 colors? n=4:
  // needs all 4 nodes distinct within radius 1 windows -> 0 1 2 ? with ?
  // != 2,0 (window around 3: 2,?,0) and != 1 (window around 0 wraps) —
  // x=1 fails window at 0... no labeling exists.
  EXPECT_FALSE(solve_by_dp(compiled.pairwise, Word(4, 0)).has_value());
}

TEST(Compile, RejectsPathTopology) {
  Alphabet in({"_"});
  Alphabet out({"x"});
  GeneralProblem g("p", in, out, 1, Topology::kDirectedPath);
  EXPECT_THROW(compile_to_pairwise(g), std::invalid_argument);
}

}  // namespace
}  // namespace lclpath
