// Differential property tests for the two decide_linear_gap engines and
// the two certificate backends (ISSUE 2 tentpole, extended by ISSUE 5):
// the factorized aggregate search must agree with the legacy pair-wise
// oracle on feasibility everywhere the oracle can run; the lazy
// class-indexed certificate must agree with the dense materialization
// point by point (same domain order, same first-valid value — the
// determinism contract); and every feasible certificate — from either
// engine, on either backend — must satisfy the paper's gluing requirement
// and drive the synthesized Theta(log* n) algorithm to verifier-accepted
// outputs on random instances.
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "decide/classifier.hpp"
#include "hardness/undirected.hpp"
#include "lcl/serialize.hpp"
#include "test_util.hpp"

namespace lclpath {
namespace {

Monoid monoid_of(const PairwiseProblem& problem) {
  return Monoid::enumerate(TransitionSystem::build(problem));
}

/// The pair-wise oracle is quadratic in domain points; keep it to domains
/// where it answers in well under a second even in Debug builds.
constexpr std::size_t kOracleDomainLimit = 4096;

/// The feasible function as explicit (point, value) rows in the canonical
/// enumeration order — the common currency for cross-backend comparisons.
std::vector<std::pair<BlockPoint, BlockValue>> collect(const LinearGapCertificate& cert) {
  std::vector<std::pair<BlockPoint, BlockValue>> rows;
  rows.reserve(cert.domain_size());
  cert.for_each_point([&](const BlockPoint& point, const BlockValue& value) {
    rows.emplace_back(point, value);
  });
  return rows;
}

/// Checks the full paper requirement on a feasible certificate by brute
/// force: every ordered pair of domain points (left role x right role),
/// every orientation combo on undirected topologies. Quadratic — only for
/// small domains.
void expect_certificate_glues_pairwise(const Monoid& monoid,
                                       const LinearGapCertificate& cert) {
  ASSERT_TRUE(cert.feasible);
  const TransitionSystem& ts = monoid.transitions();
  const bool directed = is_directed(ts.problem().topology());
  const auto rows = collect(cert);
  const std::size_t n = rows.size();
  ASSERT_EQ(n, cert.domain_size());

  // Value of each point's reversal (identity for directed problems): the
  // reversed point is itself a domain point, so value_at must serve it.
  std::vector<BlockValue> rev_value(n);
  for (std::size_t i = 0; i < n; ++i) {
    rev_value[i] =
        directed ? rows[i].second : cert.value_at(rows[i].first.reversed(monoid));
  }

  std::map<std::tuple<std::size_t, std::size_t, Label>, BitMatrix> glue;
  auto glue_of = [&](std::size_t right_elem, std::size_t left_elem, Label s0) {
    const auto key = std::tuple(right_elem, left_elem, s0);
    auto it = glue.find(key);
    if (it == glue.end()) {
      it = glue.emplace(key, monoid.element(right_elem).fwd *
                                 monoid.element(left_elem).fwd * ts.step(s0))
               .first;
    }
    return &it->second;
  };

  for (std::size_t i = 0; i < n; ++i) {
    const BlockPoint& p1 = rows[i].first;
    if (p1.kind == BlockKind::kRightEnd) continue;  // no left role
    const Label sym1_f = rows[i].second.b;
    const Label sym1_r = rev_value[i].a;
    for (std::size_t j = 0; j < n; ++j) {
      const BlockPoint& p2 = rows[j].first;
      if (p2.kind == BlockKind::kLeftEnd) continue;  // no right role
      const Label sym2_f = rows[j].second.a;
      const Label sym2_r = rev_value[j].b;
      const BitMatrix* g = glue_of(p1.right, p2.left, p2.s0);
      ASSERT_TRUE(g->get(sym1_f, sym2_f)) << "pair (" << i << ", " << j << ") F/F";
      if (directed) continue;
      ASSERT_TRUE(g->get(sym1_r, sym2_f)) << "pair (" << i << ", " << j << ") R/F";
      ASSERT_TRUE(g->get(sym1_f, sym2_r)) << "pair (" << i << ", " << j << ") F/R";
      ASSERT_TRUE(g->get(sym1_r, sym2_r)) << "pair (" << i << ", " << j << ") R/R";
    }
  }
}

/// Aggregate form of the same requirement, linear in domain points: the
/// gluing constraint reads a pair only through (right context, presented
/// b-side symbol) x (left context, s0, presented a-side symbol), so
/// collecting the presented symbol sets per class and checking every cross
/// combination against G = fwd * fwd * A(s0) covers every ordered point
/// pair — including, on undirected topologies, the symbols routed through
/// each point's reversal. Usable on the lifted domains (~10^5 points) the
/// pair-wise oracle cannot touch.
void expect_certificate_glues_aggregate(const Monoid& monoid,
                                        const LinearGapCertificate& cert) {
  ASSERT_TRUE(cert.feasible);
  const TransitionSystem& ts = monoid.transitions();
  const bool directed = is_directed(ts.problem().topology());
  const std::size_t beta = ts.num_outputs();

  std::map<std::size_t, BitVector> emit;
  std::map<std::pair<std::size_t, Label>, BitVector> accept;
  auto mark = [&](auto& table, auto key, Label sym) {
    auto [it, inserted] = table.try_emplace(key, BitVector(beta));
    it->second.set(sym, true);
  };
  cert.for_each_point([&](const BlockPoint& p, const BlockValue& v) {
    if (p.kind != BlockKind::kRightEnd) {  // left role
      mark(emit, p.right, v.b);
      if (!directed) mark(accept, std::pair(monoid.reversed_index(p.right), p.s1), v.b);
    }
    if (p.kind != BlockKind::kLeftEnd) {  // right role
      mark(accept, std::pair(p.left, p.s0), v.a);
      if (!directed) mark(emit, monoid.reversed_index(p.left), v.a);
    }
  });
  for (const auto& [e1, syms1] : emit) {
    for (const auto& [key2, syms2] : accept) {
      const BitMatrix g = monoid.element(e1).fwd * monoid.element(key2.first).fwd *
                          ts.step(key2.second);
      for (Label a = 0; a < beta; ++a) {
        if (!syms1.get(a)) continue;
        for (Label b = 0; b < beta; ++b) {
          if (!syms2.get(b)) continue;
          ASSERT_TRUE(g.get(a, b))
              << "emit " << a << " at element " << e1 << " vs accept " << b
              << " at (element " << key2.first << ", s0 " << key2.second << ")";
        }
      }
    }
  }
}

/// The ISSUE 5 determinism contract: the lazy certificate enumerates the
/// same domain in the same order as the dense one, resolves every point to
/// the same value, and serves the same values through value_at.
void expect_backends_agree_pointwise(const LinearGapCertificate& dense,
                                     const LinearGapCertificate& lazy) {
  ASSERT_EQ(dense.feasible, lazy.feasible);
  if (!dense.feasible) return;
  ASSERT_EQ(dense.backend(), CertificateBackend::kDense);
  ASSERT_EQ(lazy.backend(), CertificateBackend::kLazy);
  ASSERT_EQ(dense.ell_ctx, lazy.ell_ctx);
  ASSERT_EQ(dense.domain_size(), lazy.domain_size());
  const auto dense_rows = collect(dense);
  const auto lazy_rows = collect(lazy);
  ASSERT_TRUE(dense_rows == lazy_rows);
  for (const auto& [point, value] : dense_rows) {
    ASSERT_TRUE(lazy.contains(point));
    ASSERT_TRUE(lazy.value_at(point) == value);
  }
}

/// Runs both engines (and both factorized backends) on one monoid and
/// cross-checks everything affordable.
void run_differential(const PairwiseProblem& problem) {
  SCOPED_TRACE(problem.name() + " on " + to_string(problem.topology()));
  const Monoid monoid = monoid_of(problem);
  const LinearGapCertificate fac =
      decide_linear_gap(monoid, LinearGapEngine::kFactorized, CertificateMode::kDense);
  const LinearGapCertificate lazy =
      decide_linear_gap(monoid, LinearGapEngine::kFactorized, CertificateMode::kLazy);
  const LinearGapCertificate pair = decide_linear_gap(monoid, LinearGapEngine::kPairwise);
  ASSERT_EQ(fac.feasible, pair.feasible);
  expect_backends_agree_pointwise(fac, lazy);
  if (!fac.feasible) return;
  // Same domain, same order — the certificate layout contract (the
  // engines' chosen values may differ; the backends' may not).
  ASSERT_EQ(fac.ell_ctx, pair.ell_ctx);
  const auto fac_rows = collect(fac);
  const auto pair_rows = collect(pair);
  ASSERT_EQ(fac_rows.size(), pair_rows.size());
  for (std::size_t i = 0; i < fac_rows.size(); ++i) {
    ASSERT_TRUE(fac_rows[i].first == pair_rows[i].first) << "domain order at " << i;
  }
  expect_certificate_glues_aggregate(monoid, fac);
  expect_certificate_glues_aggregate(monoid, pair);
  if (fac.domain_size() <= kOracleDomainLimit) {
    expect_certificate_glues_pairwise(monoid, fac);
    expect_certificate_glues_pairwise(monoid, lazy);
    expect_certificate_glues_pairwise(monoid, pair);
  }
}

TEST(LinearGapDiff, EnginesAgreeOnEveryCatalogProblem) {
  for (const CatalogEntry& entry : catalog::validation_catalog()) {
    run_differential(entry.problem);
  }
}

// The Section 3.7 undirected lifts — the domains the pair-wise oracle
// cannot search (the smallest is ~6 * 10^4 points, and the oracle is
// quadratic in them), which is why the factorized certificates are instead
// validated against the gluing requirement in aggregate form. These
// domains are past the kAuto dense limit, so this also pins that the
// default certificate on lifted problems is the lazy backend.
TEST(LinearGapDiff, FactorizedCertificatesGlueOnUndirectedLifts) {
  const PairwiseProblem sources[] = {
      catalog::coloring(3, Topology::kDirectedPath),
      catalog::two_coloring(Topology::kDirectedPath),
      catalog::constant_output(Topology::kDirectedPath),
      catalog::constant_output(),
      catalog::always_accept(),
  };
  for (const PairwiseProblem& source : sources) {
    const PairwiseProblem lifted = hardness::lift_to_undirected(source);
    SCOPED_TRACE(lifted.name());
    const Monoid monoid = monoid_of(lifted);
    const LinearGapCertificate cert = decide_linear_gap(monoid);
    // 2-coloring stays linear under the lift; the rest become feasible.
    ASSERT_EQ(cert.feasible, source.name() != "2-coloring");
    if (!cert.feasible) continue;
    // kAuto picks the backend by domain size; the path lifts (~1.8 * 10^5
    // points) land on the lazy side of the limit.
    EXPECT_EQ(cert.backend(), linear_gap_domain_size(monoid) > kCertificateAutoDenseLimit
                                  ? CertificateBackend::kLazy
                                  : CertificateBackend::kDense);
    expect_certificate_glues_aggregate(monoid, cert);
  }
}

// A lazy certificate on a lifted domain must agree with the dense
// materialization of the same class solution — the full pointwise sweep
// over a ~10^5-point lifted domain (cheap: the dense side is one
// enumeration, the lazy side memoized class lookups).
TEST(LinearGapDiff, LazyAgreesWithDenseOnLiftedColoringPath) {
  const PairwiseProblem lifted =
      hardness::lift_to_undirected(catalog::coloring(3, Topology::kDirectedPath));
  const Monoid monoid = monoid_of(lifted);
  const LinearGapCertificate dense =
      decide_linear_gap(monoid, LinearGapEngine::kFactorized, CertificateMode::kDense);
  const LinearGapCertificate lazy =
      decide_linear_gap(monoid, LinearGapEngine::kFactorized, CertificateMode::kLazy);
  expect_backends_agree_pointwise(dense, lazy);
}

// Reversed-point lookups on undirected topologies: for every domain point
// p, rho(p) is a domain point too, and both backends must resolve it to
// the same value (the undirected synthesis strategies look blocks up
// through exactly this reversal).
TEST(LinearGapDiff, ReversedPointLookupsAgreeBetweenBackends) {
  const PairwiseProblem lifted =
      hardness::lift_to_undirected(catalog::constant_output(Topology::kDirectedPath));
  const Monoid monoid = monoid_of(lifted);
  const LinearGapCertificate dense =
      decide_linear_gap(monoid, LinearGapEngine::kFactorized, CertificateMode::kDense);
  const LinearGapCertificate lazy =
      decide_linear_gap(monoid, LinearGapEngine::kFactorized, CertificateMode::kLazy);
  ASSERT_TRUE(dense.feasible);
  dense.for_each_point([&](const BlockPoint& point, const BlockValue&) {
    const BlockPoint rev = point.reversed(monoid);
    ASSERT_TRUE(dense.contains(rev));
    ASSERT_TRUE(lazy.contains(rev));
    ASSERT_TRUE(dense.value_at(rev) == lazy.value_at(rev));
  });
}

// Out-of-domain lookups indicate a synthesis bug; both backends must
// reject them with the identical std::logic_error message.
TEST(LinearGapDiff, ValueAtUnknownPointThrowsSameMessageOnBothBackends) {
  const Monoid monoid = monoid_of(catalog::coloring(3));
  const LinearGapCertificate dense =
      decide_linear_gap(monoid, LinearGapEngine::kFactorized, CertificateMode::kDense);
  const LinearGapCertificate lazy =
      decide_linear_gap(monoid, LinearGapEngine::kFactorized, CertificateMode::kLazy);
  ASSERT_TRUE(dense.feasible);
  ASSERT_TRUE(lazy.feasible);
  const BlockPoint bad_element{BlockKind::kInterior, monoid.size() + 7, 0, 0, 0};
  const BlockPoint bad_input{BlockKind::kInterior, 0, 99, 0, 0};
  // Cycles have no end-block points at all.
  const BlockPoint bad_kind{BlockKind::kLeftEnd, 0, 0, 0, 0};
  for (const BlockPoint& bad : {bad_element, bad_input, bad_kind}) {
    EXPECT_FALSE(dense.contains(bad));
    EXPECT_FALSE(lazy.contains(bad));
    std::string dense_message;
    std::string lazy_message;
    try {
      dense.value_at(bad);
      FAIL() << "dense value_at accepted an out-of-domain point";
    } catch (const std::logic_error& e) {
      dense_message = e.what();
    }
    try {
      lazy.value_at(bad);
      FAIL() << "lazy value_at accepted an out-of-domain point";
    } catch (const std::logic_error& e) {
      lazy_message = e.what();
    }
    EXPECT_EQ(dense_message, lazy_message);
    EXPECT_EQ(dense_message, "LinearGapCertificate::value_at: point not in domain");
  }
}

// Random orientation-symmetric problems: the property-test sweep. Small
// alphabets keep the pair-wise oracle affordable, so both engines run and
// must agree everywhere, with both certificates passing the full
// quadratic pair check.
TEST(LinearGapDiff, EnginesAgreeOnRandomProblems) {
  Rng rng(271828);
  const Topology topologies[] = {Topology::kDirectedCycle, Topology::kDirectedPath,
                                 Topology::kUndirectedCycle, Topology::kUndirectedPath};
  std::size_t decided = 0;
  for (std::size_t trial = 0; trial < 60; ++trial) {
    const Topology topology = topologies[trial % 4];
    const std::size_t alpha = 1 + rng.next_below(2);
    const std::size_t beta = 2 + rng.next_below(2);
    Alphabet inputs;
    for (std::size_t i = 0; i < alpha; ++i) inputs.add("i" + std::to_string(i));
    Alphabet outputs;
    for (std::size_t o = 0; o < beta; ++o) outputs.add("o" + std::to_string(o));
    PairwiseProblem problem("random#" + std::to_string(trial), inputs, outputs, topology);
    for (Label i = 0; i < alpha; ++i) {
      bool any = false;
      for (Label o = 0; o < beta; ++o) {
        if (rng.next_bool(2, 3)) {
          problem.allow_node(i, o);
          any = true;
        }
      }
      if (!any) problem.allow_node(i, static_cast<Label>(rng.next_below(beta)));
    }
    // Symmetric edge table so the problem is a valid undirected LCL too.
    for (Label a = 0; a < beta; ++a) {
      for (Label b = a; b < beta; ++b) {
        if (rng.next_bool(2, 3)) {
          problem.allow_edge(a, b);
          problem.allow_edge(b, a);
        }
      }
    }
    const Monoid monoid = monoid_of(problem);
    if (linear_gap_domain_size(monoid) > kOracleDomainLimit) continue;  // oracle budget
    run_differential(problem);
    ++decided;
  }
  EXPECT_GE(decided, 40u) << "random sweep lost too many trials to the domain limit";
}

// "Certificates the verifier accepts": classify log*-class catalog
// problems with each engine/backend combination and simulate the
// synthesized algorithm built from that certificate on random instances —
// in particular, SynthesizedLogStar must run off a *lazy* certificate.
TEST(LinearGapDiff, AllCertificateConfigurationsDriveSynthesizedLogStar) {
  struct Config {
    LinearGapEngine engine;
    CertificateMode mode;
    const char* tag;
  };
  const Config configs[] = {
      {LinearGapEngine::kFactorized, CertificateMode::kDense, " [factorized/dense]"},
      {LinearGapEngine::kFactorized, CertificateMode::kLazy, " [factorized/lazy]"},
      {LinearGapEngine::kPairwise, CertificateMode::kAuto, " [pairwise]"},
  };
  Rng rng(314159);
  for (const Config& config : configs) {
    for (PairwiseProblem problem :
         {catalog::coloring(3), catalog::maximal_independent_set(),
          catalog::input_gated_coloring()}) {
      SCOPED_TRACE(problem.name() + config.tag);
      ClassifyOptions options;
      options.linear_engine = config.engine;
      options.certificate_mode = config.mode;
      const ClassifiedProblem result = classify(problem, options);
      ASSERT_EQ(result.complexity(), ComplexityClass::kLogStar) << result.summary();
      if (config.engine == LinearGapEngine::kFactorized) {
        ASSERT_EQ(result.linear_certificate().backend(),
                  config.mode == CertificateMode::kLazy ? CertificateBackend::kLazy
                                                        : CertificateBackend::kDense);
      }
      const auto algorithm = result.synthesize();
      const std::size_t r = algorithm->radius(1 << 20);
      for (const std::size_t n : {2 * r + 5, 2 * r + 38}) {
        Instance instance =
            random_instance(problem.topology(), n, problem.num_inputs(), rng);
        const auto sim = simulate(*algorithm, problem, instance);
        EXPECT_TRUE(sim.verdict.ok) << "n=" << n << ": " << sim.verdict.reason;
      }
    }
  }
}

}  // namespace
}  // namespace lclpath
