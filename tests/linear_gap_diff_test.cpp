// Differential property tests for the two decide_linear_gap engines
// (ISSUE 2 tentpole): the factorized aggregate search must agree with the
// legacy pair-wise oracle on feasibility everywhere the oracle can run,
// and every feasible certificate — from either engine — must satisfy the
// paper's gluing requirement and drive the synthesized Theta(log* n)
// algorithm to verifier-accepted outputs on random instances.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <utility>

#include "decide/classifier.hpp"
#include "hardness/undirected.hpp"
#include "lcl/serialize.hpp"
#include "test_util.hpp"

namespace lclpath {
namespace {

Monoid monoid_of(const PairwiseProblem& problem) {
  return Monoid::enumerate(TransitionSystem::build(problem));
}

/// The pair-wise oracle is quadratic in domain points; keep it to domains
/// where it answers in well under a second even in Debug builds.
constexpr std::size_t kOracleDomainLimit = 4096;

/// Checks the full paper requirement on a feasible certificate by brute
/// force: every ordered pair of domain points (left role x right role),
/// every orientation combo on undirected topologies. Quadratic — only for
/// small domains.
void expect_certificate_glues_pairwise(const Monoid& monoid,
                                       const LinearGapCertificate& cert) {
  ASSERT_TRUE(cert.feasible);
  const TransitionSystem& ts = monoid.transitions();
  const bool directed = is_directed(ts.problem().topology());
  const std::size_t n = cert.domain.size();

  // Reversed point of each domain point (identity for directed problems).
  std::vector<std::size_t> rho(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (directed) {
      rho[i] = i;
      continue;
    }
    const BlockPoint& p = cert.domain[i];
    BlockKind kind = p.kind;
    if (kind == BlockKind::kLeftEnd) kind = BlockKind::kRightEnd;
    if (p.kind == BlockKind::kRightEnd) kind = BlockKind::kLeftEnd;
    rho[i] = cert.index.at(BlockPoint{kind, monoid.reversed_index(p.right), p.s1, p.s0,
                                      monoid.reversed_index(p.left)});
  }

  std::map<std::tuple<std::size_t, std::size_t, Label>, BitMatrix> glue;
  auto glue_of = [&](std::size_t right_elem, std::size_t left_elem, Label s0) {
    const auto key = std::tuple(right_elem, left_elem, s0);
    auto it = glue.find(key);
    if (it == glue.end()) {
      it = glue.emplace(key, monoid.element(right_elem).fwd *
                                 monoid.element(left_elem).fwd * ts.step(s0))
               .first;
    }
    return &it->second;
  };

  for (std::size_t i = 0; i < n; ++i) {
    const BlockPoint& p1 = cert.domain[i];
    if (p1.kind == BlockKind::kRightEnd) continue;  // no left role
    const Label sym1_f = cert.choice[i].b;
    const Label sym1_r = cert.choice[rho[i]].a;
    for (std::size_t j = 0; j < n; ++j) {
      const BlockPoint& p2 = cert.domain[j];
      if (p2.kind == BlockKind::kLeftEnd) continue;  // no right role
      const Label sym2_f = cert.choice[j].a;
      const Label sym2_r = cert.choice[rho[j]].b;
      const BitMatrix* g = glue_of(p1.right, p2.left, p2.s0);
      ASSERT_TRUE(g->get(sym1_f, sym2_f)) << "pair (" << i << ", " << j << ") F/F";
      if (directed) continue;
      ASSERT_TRUE(g->get(sym1_r, sym2_f)) << "pair (" << i << ", " << j << ") R/F";
      ASSERT_TRUE(g->get(sym1_f, sym2_r)) << "pair (" << i << ", " << j << ") F/R";
      ASSERT_TRUE(g->get(sym1_r, sym2_r)) << "pair (" << i << ", " << j << ") R/R";
    }
  }
}

/// Aggregate form of the same requirement, linear in domain points: the
/// gluing constraint reads a pair only through (right context, presented
/// b-side symbol) x (left context, s0, presented a-side symbol), so
/// collecting the presented symbol sets per class and checking every cross
/// combination against G = fwd * fwd * A(s0) covers every ordered point
/// pair — including, on undirected topologies, the symbols routed through
/// each point's reversal. Usable on the lifted domains (~10^5 points) the
/// pair-wise oracle cannot touch.
void expect_certificate_glues_aggregate(const Monoid& monoid,
                                        const LinearGapCertificate& cert) {
  ASSERT_TRUE(cert.feasible);
  const TransitionSystem& ts = monoid.transitions();
  const bool directed = is_directed(ts.problem().topology());
  const std::size_t beta = ts.num_outputs();

  std::map<std::size_t, BitVector> emit;
  std::map<std::pair<std::size_t, Label>, BitVector> accept;
  auto mark = [&](auto& table, auto key, Label sym) {
    auto [it, inserted] = table.try_emplace(key, BitVector(beta));
    it->second.set(sym, true);
  };
  for (std::size_t i = 0; i < cert.domain.size(); ++i) {
    const BlockPoint& p = cert.domain[i];
    const BlockValue v = cert.choice[i];
    if (p.kind != BlockKind::kRightEnd) {  // left role
      mark(emit, p.right, v.b);
      if (!directed) mark(accept, std::pair(monoid.reversed_index(p.right), p.s1), v.b);
    }
    if (p.kind != BlockKind::kLeftEnd) {  // right role
      mark(accept, std::pair(p.left, p.s0), v.a);
      if (!directed) mark(emit, monoid.reversed_index(p.left), v.a);
    }
  }
  for (const auto& [e1, syms1] : emit) {
    for (const auto& [key2, syms2] : accept) {
      const BitMatrix g = monoid.element(e1).fwd * monoid.element(key2.first).fwd *
                          ts.step(key2.second);
      for (Label a = 0; a < beta; ++a) {
        if (!syms1.get(a)) continue;
        for (Label b = 0; b < beta; ++b) {
          if (!syms2.get(b)) continue;
          ASSERT_TRUE(g.get(a, b))
              << "emit " << a << " at element " << e1 << " vs accept " << b
              << " at (element " << key2.first << ", s0 " << key2.second << ")";
        }
      }
    }
  }
}

/// Runs both engines on one monoid and cross-checks everything affordable.
void run_differential(const PairwiseProblem& problem) {
  SCOPED_TRACE(problem.name() + " on " + to_string(problem.topology()));
  const Monoid monoid = monoid_of(problem);
  const LinearGapCertificate fac = decide_linear_gap(monoid, LinearGapEngine::kFactorized);
  const LinearGapCertificate pair = decide_linear_gap(monoid, LinearGapEngine::kPairwise);
  ASSERT_EQ(fac.feasible, pair.feasible);
  if (!fac.feasible) return;
  // Same domain, same order — the certificate layout contract.
  ASSERT_EQ(fac.ell_ctx, pair.ell_ctx);
  ASSERT_TRUE(fac.domain == pair.domain);
  expect_certificate_glues_aggregate(monoid, fac);
  expect_certificate_glues_aggregate(monoid, pair);
  if (fac.domain.size() <= kOracleDomainLimit) {
    expect_certificate_glues_pairwise(monoid, fac);
    expect_certificate_glues_pairwise(monoid, pair);
  }
}

TEST(LinearGapDiff, EnginesAgreeOnEveryCatalogProblem) {
  for (const CatalogEntry& entry : catalog::validation_catalog()) {
    run_differential(entry.problem);
  }
}

// The Section 3.7 undirected lifts — the domains the pair-wise oracle
// cannot search (the smallest is ~6 * 10^4 points, and the oracle is
// quadratic in them), which is why the factorized certificates are instead
// validated against the gluing requirement in aggregate form.
TEST(LinearGapDiff, FactorizedCertificatesGlueOnUndirectedLifts) {
  const PairwiseProblem sources[] = {
      catalog::coloring(3, Topology::kDirectedPath),
      catalog::two_coloring(Topology::kDirectedPath),
      catalog::constant_output(Topology::kDirectedPath),
      catalog::constant_output(),
      catalog::always_accept(),
  };
  for (const PairwiseProblem& source : sources) {
    const PairwiseProblem lifted = hardness::lift_to_undirected(source);
    SCOPED_TRACE(lifted.name());
    const Monoid monoid = monoid_of(lifted);
    const LinearGapCertificate cert = decide_linear_gap(monoid);
    // 2-coloring stays linear under the lift; the rest become feasible.
    ASSERT_EQ(cert.feasible, source.name() != "2-coloring");
    if (cert.feasible) expect_certificate_glues_aggregate(monoid, cert);
  }
}

// Random orientation-symmetric problems: the property-test sweep. Small
// alphabets keep the pair-wise oracle affordable, so both engines run and
// must agree everywhere, with both certificates passing the full
// quadratic pair check.
TEST(LinearGapDiff, EnginesAgreeOnRandomProblems) {
  Rng rng(271828);
  const Topology topologies[] = {Topology::kDirectedCycle, Topology::kDirectedPath,
                                 Topology::kUndirectedCycle, Topology::kUndirectedPath};
  std::size_t decided = 0;
  for (std::size_t trial = 0; trial < 60; ++trial) {
    const Topology topology = topologies[trial % 4];
    const std::size_t alpha = 1 + rng.next_below(2);
    const std::size_t beta = 2 + rng.next_below(2);
    Alphabet inputs;
    for (std::size_t i = 0; i < alpha; ++i) inputs.add("i" + std::to_string(i));
    Alphabet outputs;
    for (std::size_t o = 0; o < beta; ++o) outputs.add("o" + std::to_string(o));
    PairwiseProblem problem("random#" + std::to_string(trial), inputs, outputs, topology);
    for (Label i = 0; i < alpha; ++i) {
      bool any = false;
      for (Label o = 0; o < beta; ++o) {
        if (rng.next_bool(2, 3)) {
          problem.allow_node(i, o);
          any = true;
        }
      }
      if (!any) problem.allow_node(i, static_cast<Label>(rng.next_below(beta)));
    }
    // Symmetric edge table so the problem is a valid undirected LCL too.
    for (Label a = 0; a < beta; ++a) {
      for (Label b = a; b < beta; ++b) {
        if (rng.next_bool(2, 3)) {
          problem.allow_edge(a, b);
          problem.allow_edge(b, a);
        }
      }
    }
    const Monoid monoid = monoid_of(problem);
    if (linear_gap_domain_size(monoid) > kOracleDomainLimit) continue;  // oracle budget
    run_differential(problem);
    ++decided;
  }
  EXPECT_GE(decided, 40u) << "random sweep lost too many trials to the domain limit";
}

// "Certificates the verifier accepts": classify log*-class catalog
// problems with each engine and simulate the synthesized algorithm built
// from that engine's certificate on random instances.
TEST(LinearGapDiff, BothEnginesCertificatesDriveSynthesizedLogStar) {
  Rng rng(314159);
  for (const LinearGapEngine engine :
       {LinearGapEngine::kFactorized, LinearGapEngine::kPairwise}) {
    for (PairwiseProblem problem :
         {catalog::coloring(3), catalog::maximal_independent_set(),
          catalog::input_gated_coloring()}) {
      SCOPED_TRACE(problem.name() + (engine == LinearGapEngine::kPairwise
                                         ? " [pairwise]"
                                         : " [factorized]"));
      ClassifyOptions options;
      options.linear_engine = engine;
      const ClassifiedProblem result = classify(problem, options);
      ASSERT_EQ(result.complexity(), ComplexityClass::kLogStar) << result.summary();
      const auto algorithm = result.synthesize();
      const std::size_t r = algorithm->radius(1 << 20);
      for (const std::size_t n : {2 * r + 5, 2 * r + 38}) {
        Instance instance =
            random_instance(problem.topology(), n, problem.num_inputs(), rng);
        const auto sim = simulate(*algorithm, problem, instance);
        EXPECT_TRUE(sim.verdict.ok) << "n=" << n << ": " << sim.verdict.reason;
      }
    }
  }
}

}  // namespace
}  // namespace lclpath
