// The hardness constructions routed through the batch classification
// engine (hardness/study.hpp): lift workload classification, in-batch
// dedup of renamed lifts, cross-call Batch/Monoid cache reuse, and the
// Theorem 5 budget-cap observable. Runs its batches on several worker
// threads — the suite is part of CI's TSan job, where the shared caches
// and the shared Monoid instances are the interesting surface.
#include <gtest/gtest.h>

#include <vector>

#include "hardness/pi_problem.hpp"
#include "hardness/study.hpp"
#include "lba/machines.hpp"
#include "lcl/catalog.hpp"

namespace lclpath::hardness {
namespace {

TEST(HardnessBatch, LiftWorkloadClassifies) {
  const std::vector<PairwiseProblem> problems = lift_workload();
  ASSERT_GE(problems.size(), 5u);

  StudyOptions options;
  options.num_threads = 4;
  const StudyResult result = classify_hardness(problems, options);

  ASSERT_EQ(result.entries.size(), problems.size());
  EXPECT_EQ(result.summary.total, problems.size());
  EXPECT_EQ(result.summary.ok, problems.size());
  EXPECT_EQ(result.summary.failed, 0u);
  for (std::size_t i = 0; i < problems.size(); ++i) {
    EXPECT_TRUE(result.entries[i].ok()) << problems[i].name() << ": "
                                        << result.entries[i].error();
  }
  // The class census covers the constant and linear regimes (the lift
  // constructions preserve the source classes) and sums to the batch.
  std::size_t census = 0;
  for (const std::size_t count : result.summary.by_class) census += count;
  EXPECT_EQ(census, result.summary.ok);
  EXPECT_EQ(result.summary.by_class[static_cast<std::size_t>(
                ComplexityClass::kUnsolvable)],
            0u);

  // The workload carries a renamed copy of a lifted problem: canonical
  // keys ignore names, so the batch engine classifies it once.
  EXPECT_GE(result.summary.deduplicated, 1u);
}

TEST(HardnessBatch, SharedCachesServeRepeatStudies) {
  const std::vector<PairwiseProblem> problems = lift_workload();
  MonoidCache monoids;
  BatchCache batch;
  StudyOptions options;
  options.num_threads = 4;
  options.monoid_cache = &monoids;
  options.batch_cache = &batch;

  const StudyResult cold = classify_hardness(problems, options);
  EXPECT_EQ(cold.summary.ok, problems.size());
  EXPECT_EQ(cold.summary.from_cache, 0u);
  // Every representative problem built (or reused) a monoid through the
  // shared cache; nothing was there to hit on the very first pass.
  EXPECT_GT(cold.monoid_misses, 0u);

  const StudyResult warm = classify_hardness(problems, options);
  EXPECT_EQ(warm.summary.ok, problems.size());
  // Second pass: every entry is served from the batch cache without
  // touching the monoid layer at all.
  EXPECT_EQ(warm.summary.from_cache, problems.size());
  EXPECT_EQ(warm.monoid_hits, 0u);
  EXPECT_EQ(warm.monoid_misses, 0u);
}

TEST(HardnessBatch, MonoidCacheSharesInstancesAcrossCalls) {
  // Same problems, fresh BatchCache each call: the second call must
  // re-classify but hit the MonoidCache, ending up with the *same* shared
  // Monoid instances.
  const std::vector<PairwiseProblem> problems = lift_workload();
  MonoidCache monoids;
  StudyOptions options;
  options.num_threads = 4;
  options.monoid_cache = &monoids;

  const StudyResult first = classify_hardness(problems, options);
  const StudyResult second = classify_hardness(problems, options);
  ASSERT_EQ(first.summary.ok, problems.size());
  ASSERT_EQ(second.summary.ok, problems.size());
  EXPECT_EQ(second.monoid_misses, 0u);
  EXPECT_GT(second.monoid_hits, 0u);
  for (std::size_t i = 0; i < problems.size(); ++i) {
    EXPECT_EQ(first.entries[i].classified().monoid_ptr().get(),
              second.entries[i].classified().monoid_ptr().get())
        << problems[i].name();
  }
}

TEST(HardnessBatch, PiPairwiseBudgetCapIsRecordedPerEntry) {
  // Theorem 5's observable: classifying Pi_MB's pairwise product hits the
  // monoid budget — recorded in that entry, while the rest of the batch
  // classifies normally.
  std::vector<PairwiseProblem> problems;
  problems.push_back(catalog::coloring(3, Topology::kDirectedPath));
  problems.push_back(pi_pairwise(lba::immediate_halt(), 2));

  StudyOptions options;
  options.num_threads = 2;
  options.max_monoid = 60;  // enough for the coloring, hopeless for Pi_MB
  const StudyResult result = classify_hardness(problems, options);

  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_TRUE(result.entries[0].ok()) << result.entries[0].error();
  ASSERT_FALSE(result.entries[1].ok());
  EXPECT_NE(result.entries[1].error().find("budget"), std::string::npos)
      << result.entries[1].error();
  EXPECT_EQ(result.summary.ok, 1u);
  EXPECT_EQ(result.summary.failed, 1u);
}

TEST(HardnessBatch, PiPairwiseStructure) {
  const lba::Machine machine = lba::immediate_halt();
  const std::size_t b = 2;
  const PairwiseProblem product = pi_pairwise(machine, b);
  const PiProblem pi(machine, b);
  const PiLabels& labels = pi.labels();

  EXPECT_EQ(product.topology(), Topology::kDirectedPath);
  EXPECT_EQ(product.num_inputs(), labels.num_inputs());
  EXPECT_EQ(product.num_outputs(), labels.num_inputs() * labels.num_outputs());
  EXPECT_TRUE(product.has_first_constraint());

  // Lemma 2's product invariants, spot-checked: a pairwise output is only
  // usable where its input component matches the node input, and the
  // last-node mask rejects exactly the specific-error outputs.
  const std::size_t num_out = labels.num_outputs();
  for (Label i = 0; i < labels.num_inputs(); ++i) {
    for (Label j = 0; j < labels.num_inputs(); ++j) {
      if (i == j) continue;
      for (Label o = 0; o < num_out; o += 7) {
        EXPECT_FALSE(product.node_ok(i, static_cast<Label>(j * num_out + o)));
      }
    }
  }
  for (Label o = 0; o < num_out; ++o) {
    const bool allowed = product.last_ok(o);  // input component 0
    EXPECT_EQ(allowed, !labels.decode_output(o).is_specific_error());
  }
}

}  // namespace
}  // namespace lclpath::hardness
