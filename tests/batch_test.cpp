#include "decide/batch.hpp"

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"
#include "hardness/undirected.hpp"
#include "lcl/serialize.hpp"

namespace lclpath {
namespace {

std::vector<PairwiseProblem> catalog_problems() {
  std::vector<PairwiseProblem> problems;
  for (const auto& entry : catalog::validation_catalog()) {
    problems.push_back(entry.problem);
  }
  return problems;
}

// The acceptance property: batch results over the full validation catalog
// are element-wise identical to serial classify().
TEST(Batch, MatchesSerialClassifyOnCatalog) {
  const auto problems = catalog_problems();
  BatchOptions options;
  options.num_threads = 4;
  const std::vector<BatchEntry> batch = classify_batch(problems, options);
  ASSERT_EQ(batch.size(), problems.size());
  for (std::size_t i = 0; i < problems.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << problems[i].name() << ": " << batch[i].error();
    const ClassifiedProblem serial = classify(problems[i]);
    const ClassifiedProblem& parallel = batch[i].classified();
    EXPECT_EQ(parallel.complexity(), serial.complexity()) << problems[i].name();
    EXPECT_EQ(parallel.monoid_size(), serial.monoid_size()) << problems[i].name();
    EXPECT_EQ(parallel.summary(), serial.summary()) << problems[i].name();
    // Slot i describes problems[i]: ordering is deterministic.
    EXPECT_EQ(parallel.problem(), problems[i]) << problems[i].name();
  }
}

TEST(Batch, UnsolvableProblemsAreSuccessfulClassifications) {
  std::vector<PairwiseProblem> problems = {catalog::empty_problem(),
                                           catalog::coloring(3)};
  const auto batch = classify_batch(problems);
  ASSERT_EQ(batch.size(), 2u);
  ASSERT_TRUE(batch[0].ok());
  ASSERT_TRUE(batch[1].ok());
  EXPECT_EQ(batch[0].classified().complexity(), ComplexityClass::kUnsolvable);
  EXPECT_EQ(batch[1].classified().complexity(), ComplexityClass::kLogStar);
}

// A problem whose reachable type space exceeds the monoid budget throws in
// classify(); in a batch the failure must stay confined to its slot.
TEST(Batch, BudgetOverflowDoesNotPoisonTheBatch) {
  const PairwiseProblem small = catalog::constant_output();
  const PairwiseProblem big = catalog::coloring(4);
  const std::size_t small_monoid = classify(small).monoid_size();
  const std::size_t big_monoid = classify(big).monoid_size();
  ASSERT_LT(small_monoid, big_monoid);
  BatchOptions options;
  options.classify.max_monoid = (small_monoid + big_monoid) / 2;

  std::vector<PairwiseProblem> problems = {big, small, big};
  const auto batch = classify_batch(problems, options);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_FALSE(batch[0].ok());
  EXPECT_FALSE(batch[0].error().empty());
  EXPECT_THROW(batch[0].classified(), std::runtime_error);
  ASSERT_TRUE(batch[1].ok()) << batch[1].error();
  EXPECT_EQ(batch[1].classified().complexity(), ComplexityClass::kConstant);
  EXPECT_FALSE(batch[2].ok());
}

TEST(Batch, DeduplicatesIdenticalProblems) {
  PairwiseProblem renamed = catalog::coloring(3);
  renamed.set_name("same-problem-different-name");
  std::vector<PairwiseProblem> problems = {catalog::coloring(3),
                                           catalog::coloring(3), renamed};
  const auto batch = classify_batch(problems);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_FALSE(batch[0].deduplicated);
  EXPECT_TRUE(batch[1].deduplicated);
  // Names are cosmetic: the canonical key ignores them.
  EXPECT_TRUE(batch[2].deduplicated);
  EXPECT_EQ(batch[0].outcome.get(), batch[1].outcome.get());
  EXPECT_EQ(batch[0].outcome.get(), batch[2].outcome.get());
  EXPECT_EQ(batch[1].classified().complexity(), ComplexityClass::kLogStar);
}

TEST(Batch, DedupCanBeDisabled) {
  std::vector<PairwiseProblem> problems = {catalog::coloring(3),
                                           catalog::coloring(3)};
  BatchOptions options;
  options.dedup = false;
  const auto batch = classify_batch(problems, options);
  EXPECT_FALSE(batch[0].deduplicated);
  EXPECT_FALSE(batch[1].deduplicated);
  EXPECT_NE(batch[0].outcome.get(), batch[1].outcome.get());
}

TEST(Batch, CacheServesRepeatCalls) {
  BatchCache cache;
  BatchOptions options;
  options.cache = &cache;
  std::vector<PairwiseProblem> problems = {catalog::coloring(3),
                                           catalog::maximal_independent_set()};

  const auto first = classify_batch(problems, options);
  EXPECT_FALSE(first[0].from_cache);
  EXPECT_FALSE(first[1].from_cache);
  EXPECT_EQ(cache.size(), 2u);

  const auto second = classify_batch(problems, options);
  EXPECT_TRUE(second[0].from_cache);
  EXPECT_TRUE(second[1].from_cache);
  // Cached outcomes are shared, not recomputed.
  EXPECT_EQ(first[0].outcome.get(), second[0].outcome.get());
  EXPECT_EQ(second[0].classified().complexity(), ComplexityClass::kLogStar);
  EXPECT_GE(cache.hits(), 2u);
}

TEST(Batch, CacheDoesNotMemoizeBudgetFailures) {
  const PairwiseProblem big = catalog::coloring(4);
  const std::size_t big_monoid = classify(big).monoid_size();
  ASSERT_GT(big_monoid, 1u);
  BatchCache cache;
  std::vector<PairwiseProblem> problems = {big};

  BatchOptions tight;
  tight.cache = &cache;
  tight.classify.max_monoid = big_monoid - 1;
  const auto first = classify_batch(problems, tight);
  ASSERT_FALSE(first[0].ok());
  EXPECT_EQ(cache.size(), 0u);

  // A retry with a sufficient budget must recompute, not replay the error.
  BatchOptions roomy;
  roomy.cache = &cache;
  const auto second = classify_batch(problems, roomy);
  ASSERT_TRUE(second[0].ok()) << second[0].error();
  EXPECT_FALSE(second[0].from_cache);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Batch, EmptyBatchIsEmpty) {
  const auto batch = classify_batch({});
  EXPECT_TRUE(batch.empty());
}

// A capped BatchCache evicts in FIFO insertion order; outcomes already
// handed to a batch stay valid (shared_ptr), and the evicted problem
// recomputes on the next call while the survivors still hit.
TEST(Batch, CacheCapsEntriesWithFifoEviction) {
  BatchCache cache(2);
  EXPECT_EQ(cache.max_entries(), 2u);
  BatchOptions options;
  options.cache = &cache;

  const std::vector<PairwiseProblem> first = {catalog::coloring(3)};
  const std::vector<PairwiseProblem> second = {catalog::constant_output()};
  const std::vector<PairwiseProblem> third = {catalog::maximal_independent_set()};
  const auto kept = classify_batch(first, options);
  classify_batch(second, options);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);

  // Third insert evicts the oldest entry (coloring(3)).
  classify_batch(third, options);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  const auto recomputed = classify_batch(first, options);
  EXPECT_FALSE(recomputed[0].from_cache);
  // The pre-eviction outcome the first batch holds is still usable.
  EXPECT_EQ(kept[0].classified().complexity(), ComplexityClass::kLogStar);
  // Survivors of the eviction still hit.
  const auto hit = classify_batch(third, options);
  EXPECT_TRUE(hit[0].from_cache);
}

TEST(MonoidCache, HitMissCountersAndSharedPointer) {
  MonoidCache cache;
  ClassifyOptions options;
  options.monoid_cache = &cache;
  const PairwiseProblem p = catalog::coloring(3);

  const ClassifiedProblem first = classify(p, options);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);

  const ClassifiedProblem second = classify(p, options);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  // Not a copy: one immutable monoid, shared.
  EXPECT_EQ(first.monoid_ptr().get(), second.monoid_ptr().get());
  EXPECT_EQ(second.complexity(), ComplexityClass::kLogStar);
}

TEST(MonoidCache, SharesAcrossCosmeticRenamesButNotConstraints) {
  MonoidCache cache;
  ClassifyOptions options;
  options.monoid_cache = &cache;
  PairwiseProblem renamed = catalog::coloring(3);
  renamed.set_name("same-skeleton-different-name");

  const ClassifiedProblem a = classify(catalog::coloring(3), options);
  const ClassifiedProblem b = classify(renamed, options);
  EXPECT_EQ(a.monoid_ptr().get(), b.monoid_ptr().get());
  EXPECT_EQ(cache.hits(), 1u);

  const ClassifiedProblem c = classify(catalog::coloring(4), options);
  EXPECT_NE(a.monoid_ptr().get(), c.monoid_ptr().get());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(MonoidCache, SkeletonKeySeesTopology) {
  // Deciders read the topology through the shared monoid's transition
  // system, so path and cycle variants must not share one monoid even
  // though their matrices coincide.
  MonoidCache cache;
  ClassifyOptions options;
  options.monoid_cache = &cache;
  const ClassifiedProblem cycle = classify(catalog::coloring(3), options);
  const ClassifiedProblem path =
      classify(catalog::coloring(3, Topology::kDirectedPath), options);
  EXPECT_NE(cycle.monoid_ptr().get(), path.monoid_ptr().get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(MonoidCache, SharedAcrossThreadsInBatch) {
  // dedup off + no BatchCache: every slot really classifies, and all
  // workers must converge on one shared monoid through the cache.
  MonoidCache cache;
  BatchOptions options;
  options.num_threads = 4;
  options.dedup = false;
  options.classify.monoid_cache = &cache;
  std::vector<PairwiseProblem> problems(8, catalog::coloring(3));
  const auto batch = classify_batch(problems, options);
  ASSERT_EQ(batch.size(), 8u);
  const Monoid* shared = batch[0].classified().monoid_ptr().get();
  for (const BatchEntry& entry : batch) {
    ASSERT_TRUE(entry.ok()) << entry.error();
    EXPECT_FALSE(entry.deduplicated);
    EXPECT_EQ(entry.classified().monoid_ptr().get(), shared);
  }
  EXPECT_EQ(cache.size(), 1u);
  // Concurrent misses may race before the first insert; at least the
  // repeats after it must hit, and every lookup is accounted for.
  EXPECT_EQ(cache.hits() + cache.misses(), 8u);
  EXPECT_GE(cache.hits(), 1u);
}

TEST(MonoidCache, BudgetOverflowIsNotCachedAndHitsRespectBudget) {
  const PairwiseProblem big = catalog::coloring(4);
  const std::size_t big_monoid = classify(big).monoid_size();
  ASSERT_GT(big_monoid, 1u);
  MonoidCache cache;

  ClassifyOptions tight;
  tight.monoid_cache = &cache;
  tight.max_monoid = big_monoid - 1;
  EXPECT_THROW(classify(big, tight), std::runtime_error);
  EXPECT_EQ(cache.size(), 0u);

  // A retry with a sufficient budget recomputes and caches.
  ClassifyOptions roomy;
  roomy.monoid_cache = &cache;
  const ClassifiedProblem ok = classify(big, roomy);
  EXPECT_EQ(ok.monoid_size(), big_monoid);
  EXPECT_EQ(cache.size(), 1u);

  // A cache hit whose monoid exceeds the caller's budget throws exactly
  // like enumeration would have.
  EXPECT_THROW(classify(big, tight), std::runtime_error);
}

// A shared BatchCache must not serve one certificate mode's outcome to a
// caller that asked for the other backend: the complexity class agrees,
// but the certificate representation (lazy MBs vs dense GBs on lifted
// problems) is exactly what the caller chose.
TEST(Batch, CacheDoesNotServeAcrossCertificateModes) {
  const std::vector<PairwiseProblem> problems = {catalog::coloring(3)};
  BatchCache cache;
  BatchOptions dense_options;
  dense_options.cache = &cache;
  dense_options.classify.certificate_mode = CertificateMode::kDense;
  const auto dense = classify_batch(problems, dense_options);
  BatchOptions lazy_options;
  lazy_options.cache = &cache;
  lazy_options.classify.certificate_mode = CertificateMode::kLazy;
  const auto lazy = classify_batch(problems, lazy_options);
  ASSERT_TRUE(dense[0].ok());
  ASSERT_TRUE(lazy[0].ok());
  EXPECT_FALSE(lazy[0].from_cache) << "lazy batch must not reuse the dense outcome";
  EXPECT_EQ(dense[0].classified().linear_certificate().backend(),
            CertificateBackend::kDense);
  EXPECT_EQ(lazy[0].classified().linear_certificate().backend(),
            CertificateBackend::kLazy);
  // The same mode does hit its own earlier outcome.
  const auto again = classify_batch(problems, lazy_options);
  EXPECT_TRUE(again[0].from_cache);
  EXPECT_EQ(again[0].classified().linear_certificate().backend(),
            CertificateBackend::kLazy);
}

// ISSUE 5: the lazy certificate's memoized value_at is the hot lookup of
// every synthesized log* algorithm a batch outcome hands out, and batch
// consumers share one outcome (dedup, BatchCache) across worker threads.
// Hammer one shared lazy certificate from the pool: all threads must see
// the same deterministic values as a serial sweep (the memo is the only
// mutable state; this test runs under the sanitizer jobs, and the race
// would also surface as torn BlockValues here).
TEST(Batch, LazyCertificateLookupsAreThreadSafeUnderThePool) {
  const PairwiseProblem lifted =
      hardness::lift_to_undirected(catalog::coloring(3, Topology::kDirectedPath));
  ClassifyOptions options;
  options.certificate_mode = CertificateMode::kLazy;
  const ClassifiedProblem result = classify(lifted, options);
  ASSERT_TRUE(result.linear_certificate().feasible);
  ASSERT_EQ(result.linear_certificate().backend(), CertificateBackend::kLazy);
  const LinearGapCertificate& cert = result.linear_certificate();

  // A deterministic sample of domain points (spread across the context
  // layers and inputs) and their expected values, resolved serially first.
  const Monoid& monoid = result.monoid();
  std::vector<std::size_t> contexts = monoid.layer_at(cert.ell_ctx);
  const std::vector<std::size_t> next = monoid.layer_at(cert.ell_ctx + 1);
  contexts.insert(contexts.end(), next.begin(), next.end());
  ASSERT_FALSE(contexts.empty());
  const Label alpha = static_cast<Label>(lifted.num_inputs());
  std::vector<BlockPoint> sample;
  for (std::size_t i = 0; i < 64; ++i) {
    sample.push_back(BlockPoint{BlockKind::kInterior,
                                contexts[(i * 13) % contexts.size()],
                                static_cast<Label>(i % alpha),
                                static_cast<Label>((i / 2) % alpha),
                                contexts[(i * 29) % contexts.size()]});
  }
  // Fresh, un-memoized certificate for the concurrent pass, so the racing
  // threads also exercise first-resolution inserts, not only memo hits.
  const ClassifiedProblem fresh = classify(lifted, options);
  const LinearGapCertificate& shared = fresh.linear_certificate();
  std::vector<BlockValue> expected;
  for (const BlockPoint& p : sample) expected.push_back(cert.value_at(p));

  ThreadPool pool(8);
  std::vector<std::future<std::size_t>> futures;
  for (std::size_t t = 0; t < 8; ++t) {
    futures.push_back(pool.submit([&, t]() -> std::size_t {
      std::size_t mismatches = 0;
      for (std::size_t round = 0; round < 50; ++round) {
        for (std::size_t i = 0; i < sample.size(); ++i) {
          const std::size_t j = (i + t * 7) % sample.size();
          if (!(shared.value_at(sample[j]) == expected[j])) ++mismatches;
          if (!(shared.value_at(sample[j].reversed(monoid)) ==
                shared.value_at(sample[j].reversed(monoid)))) {
            ++mismatches;
          }
        }
      }
      return mismatches;
    }));
  }
  for (auto& f : futures) EXPECT_EQ(f.get(), 0u);
}

TEST(CanonicalKey, IgnoresNamesButSeesConstraints) {
  PairwiseProblem a = catalog::coloring(3);
  PairwiseProblem b = catalog::coloring(3);
  b.set_name("renamed");
  EXPECT_EQ(canonical_key(a), canonical_key(b));
  EXPECT_EQ(canonical_hash(a), canonical_hash(b));

  const PairwiseProblem c = catalog::coloring(4);
  EXPECT_NE(canonical_key(a), canonical_key(c));

  // Endpoint constraints are part of the identity (serialized via the
  // `first` / `last` lines).
  PairwiseProblem d = catalog::coloring(3, Topology::kDirectedPath);
  PairwiseProblem e = d;
  e.forbid_last(0);
  EXPECT_NE(canonical_key(d), canonical_key(e));
  PairwiseProblem f = d;
  f.allow_node_first("_", "c0");
  EXPECT_NE(canonical_key(d), canonical_key(f));
}

}  // namespace
}  // namespace lclpath
