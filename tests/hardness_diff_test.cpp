// Differential tests pinning the word-parallel hardness/LBA kernels
// against their scalar reference semantics:
//
//   * PiFeasibility's transfer-matrix DP vs the retired per-label scalar
//     DP (the bench_lower_bound seed implementation, kept here as the
//     executable specification);
//   * the packed StepTable run (and Brent's headless variant) vs the
//     structured Configuration / step() reference;
//   * the fused good_input encoder vs a reference built from the run
//     trace.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "hardness/encoder.hpp"
#include "hardness/feasibility.hpp"
#include "lba/machines.hpp"

namespace lclpath::hardness {
namespace {

// The scalar reference DP: for every position, for every output, for
// every predecessor output, one node_ok() probe. Quadratic in the output
// alphabet per edge — exactly what PiFeasibility's cached transfer
// matrices replace — and trivially auditable against Section 3.4.
std::vector<std::vector<char>> scalar_feasible(const PiProblem& problem,
                                               const std::vector<InLabel>& input) {
  const PiLabels& labels = problem.labels();
  const std::size_t n = input.size();
  const std::size_t num_out = labels.num_outputs();
  std::vector<std::vector<char>> reach(n, std::vector<char>(num_out, 0));
  if (n == 0) return reach;
  for (Label o = 0; o < num_out; ++o) {
    if (problem.node_ok(0, input[0], labels.decode_output(o), nullptr, nullptr)) {
      reach[0][o] = 1;
    }
  }
  for (std::size_t v = 1; v < n; ++v) {
    for (Label o = 0; o < num_out; ++o) {
      const OutLabel out = labels.decode_output(o);
      for (Label p = 0; p < num_out && !reach[v][o]; ++p) {
        if (!reach[v - 1][p]) continue;
        const OutLabel pred = labels.decode_output(p);
        if (problem.node_ok(v, input[v], out, &input[v - 1], &pred)) reach[v][o] = 1;
      }
    }
  }
  std::vector<std::vector<char>> feasible = reach;
  for (Label o = 0; o < num_out; ++o) {
    if (!problem.allowed_at_last(labels.decode_output(o))) feasible[n - 1][o] = 0;
  }
  for (std::size_t v = n - 1; v > 0; --v) {
    for (Label p = 0; p < num_out; ++p) {
      if (!feasible[v - 1][p]) continue;
      bool extends = false;
      const OutLabel pred = labels.decode_output(p);
      for (Label o = 0; o < num_out && !extends; ++o) {
        if (!feasible[v][o]) continue;
        extends = problem.node_ok(v, input[v], labels.decode_output(o),
                                  &input[v - 1], &pred);
      }
      if (!extends) feasible[v - 1][p] = 0;
    }
  }
  return feasible;
}

void expect_feasibility_matches(const PiProblem& problem,
                                const std::vector<InLabel>& input,
                                const std::string& what) {
  const PiFeasibility feasibility(problem);
  const std::vector<BitVector> sets = feasibility.feasible_sets(input);
  const std::vector<std::vector<char>> reference = scalar_feasible(problem, input);
  ASSERT_EQ(sets.size(), input.size()) << what;
  const std::size_t num_out = problem.labels().num_outputs();
  for (std::size_t v = 0; v < input.size(); ++v) {
    for (Label o = 0; o < num_out; ++o) {
      ASSERT_EQ(sets[v].get(o), reference[v][o] != 0)
          << what << ": position " << v << ", output " << o;
    }
  }
}

TEST(HardnessFeasibilityDiff, MatchesScalarDpOnGoodInputs) {
  for (std::size_t b : {2u, 3u}) {
    const auto machine = lba::unary_counter();
    const auto run = lba::run(machine, b);
    const PiProblem problem(machine, b);
    const std::size_t n = encoding_length(b, run.steps) + 4;
    const auto input = good_input(machine, b, Secret::kA, run.steps, n);
    expect_feasibility_matches(problem, input, "good input B=" + std::to_string(b));
  }
}

TEST(HardnessFeasibilityDiff, MatchesScalarDpOnCorruptedInputs) {
  const std::size_t b = 3;
  const auto machine = lba::unary_counter();
  const auto run = lba::run(machine, b);
  const PiProblem problem(machine, b);
  const std::size_t n = encoding_length(b, run.steps) + 8;
  for (int k = 0; k <= 6; ++k) {
    const auto corruption = static_cast<Corruption>(k);
    auto input = good_input(machine, b, Secret::kB, run.steps, n);
    try {
      input = corrupt(machine, b, std::move(input), corruption, 2);
    } catch (const std::exception&) {
      continue;  // corruption not applicable at this size
    }
    expect_feasibility_matches(problem, input,
                               "corruption " + std::to_string(k));
  }
}

TEST(HardnessFeasibilityDiff, MatchesScalarDpOnRandomInputs) {
  // Arbitrary label soup (decode of random codec indices) — exercises
  // constraint combinations no well-formed encoding reaches.
  const std::size_t b = 2;
  const auto machine = lba::unary_counter();
  const PiProblem problem(machine, b);
  const std::size_t num_in = problem.labels().num_inputs();
  std::mt19937 rng(20260807);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<InLabel> input;
    const std::size_t n = 5 + rng() % 30;
    for (std::size_t v = 0; v < n; ++v) {
      input.push_back(problem.labels().decode_input(
          static_cast<Label>(rng() % num_in)));
    }
    expect_feasibility_matches(problem, input, "random trial " + std::to_string(trial));
  }
}

TEST(HardnessFeasibilityDiff, TransferCacheIsBoundedByInputPairs) {
  const std::size_t b = 3;
  const auto machine = lba::unary_counter();
  const auto run = lba::run(machine, b);
  const PiProblem problem(machine, b);
  const PiFeasibility feasibility(problem);
  const std::size_t n = encoding_length(b, run.steps) + 4;
  const auto input = good_input(machine, b, Secret::kA, run.steps, n);

  feasibility.feasible_counts(input);
  const std::size_t after_first = feasibility.cached_transfers();
  EXPECT_GT(after_first, 0u);
  // The encoding uses far fewer distinct adjacent pairs than positions —
  // the reuse that makes the DP one vector-matrix product per edge.
  EXPECT_LT(after_first, n);
  // Same input again: nothing new to build.
  feasibility.feasible_counts(input);
  EXPECT_EQ(feasibility.cached_transfers(), after_first);
}

TEST(LbaPackedDiff, PackedRunMatchesReferenceStep) {
  const lba::Machine machines[] = {lba::immediate_halt(), lba::unary_counter(),
                                   lba::binary_counter(), lba::looper()};
  for (const lba::Machine& machine : machines) {
    for (std::size_t b : {2u, 3u, 5u}) {
      const auto result = lba::run(machine, b);
      const auto& trace = result.trace();
      ASSERT_GE(trace.size(), 1u);
      // Replay the structured reference step along the packed trace.
      lba::Configuration config = lba::initial_configuration(machine, b);
      ASSERT_EQ(trace[0], config);
      for (std::size_t t = 1; t < trace.size(); ++t) {
        config = lba::step(machine, config);
        ASSERT_EQ(trace[t], config)
            << "machine diverges from reference at step " << t << ", B=" << b;
      }
      if (result.halts) {
        EXPECT_EQ(config.state, machine.final_state());
        EXPECT_EQ(result.steps, trace.size() - 1);
      } else {
        ASSERT_TRUE(result.loop_start.has_value());
        EXPECT_EQ(trace.back(), trace[*result.loop_start]);
      }
    }
  }
}

TEST(LbaPackedDiff, HeadlessAgreesWithTracedRun) {
  const lba::Machine machines[] = {lba::immediate_halt(), lba::unary_counter(),
                                   lba::binary_counter(), lba::looper()};
  for (const lba::Machine& machine : machines) {
    for (std::size_t b : {2u, 3u, 5u, 8u}) {
      const auto traced = lba::run(machine, b);
      const auto headless = lba::run_headless(machine, b);
      EXPECT_EQ(headless.halts, traced.halts) << "B=" << b;
      if (traced.halts) {
        EXPECT_EQ(headless.steps, traced.steps) << "B=" << b;
      } else {
        // run() stops at the first repeated configuration: its loop_start
        // is the orbit's entry point mu, and the repeat happens at
        // mu + lambda — both must match Brent's (mu, lambda).
        ASSERT_TRUE(headless.loop_start.has_value());
        ASSERT_TRUE(headless.loop_length.has_value());
        ASSERT_TRUE(traced.loop_start.has_value());
        EXPECT_EQ(*headless.loop_start, *traced.loop_start) << "B=" << b;
        EXPECT_EQ(*headless.loop_start + *headless.loop_length,
                  traced.trace_length() - 1)
            << "B=" << b;
      }
    }
  }
}

TEST(HardnessEncoderDiff, FusedEncoderMatchesRunTrace) {
  for (std::size_t b : {2u, 4u}) {
    const auto machine = lba::unary_counter();
    const auto run = lba::run(machine, b);
    const auto& trace = run.trace();
    const std::size_t n = encoding_length(b, run.steps) + 6;
    const auto input = good_input(machine, b, Secret::kA, run.steps, n);

    // Reference: spell each traced configuration into its block.
    ASSERT_EQ(input[0].kind, InKind::kStartA);
    std::size_t pos = 1;
    for (std::size_t step = 0; step <= run.steps; ++step) {
      ASSERT_EQ(input[pos].kind, InKind::kSeparator) << "B=" << b << " step " << step;
      ++pos;
      const lba::Configuration& config = trace[step];
      for (std::size_t j = 0; j < b; ++j, ++pos) {
        ASSERT_EQ(input[pos].kind, InKind::kTape);
        EXPECT_EQ(input[pos].content, config.tape[j]);
        EXPECT_EQ(input[pos].state, config.state);
        EXPECT_EQ(input[pos].head, config.head == j);
      }
    }
    for (; pos < n; ++pos) EXPECT_EQ(input[pos].kind, InKind::kEmpty);
  }
}

}  // namespace
}  // namespace lclpath::hardness
