#include <gtest/gtest.h>

#include "local/cole_vishkin.hpp"
#include "local/decomposition.hpp"
#include "local/orientation.hpp"
#include "local/partition.hpp"
#include "local/simulator.hpp"
#include "test_util.hpp"

namespace lclpath {
namespace {

TEST(Instance, ValidationAndNeighbors) {
  Instance i = make_instance(Topology::kDirectedCycle, {0, 1, 0});
  EXPECT_NO_THROW(i.validate());
  EXPECT_EQ(i.succ(2), 0u);
  EXPECT_EQ(i.pred(0), 2u);
  i.ids[1] = i.ids[0];
  EXPECT_THROW(i.validate(), std::invalid_argument);
}

TEST(Views, WindowShapesOnPathsAndCycles) {
  Rng rng(1);
  Instance cycle = random_instance(Topology::kDirectedCycle, 20, 2, rng);
  const View v = extract_view(cycle, 3, 4);
  EXPECT_EQ(v.size(), 9u);
  EXPECT_EQ(v.center, 4u);
  EXPECT_EQ(v.inputs[4], cycle.inputs[3]);
  EXPECT_EQ(v.inputs[0], cycle.inputs[19]);  // wraps

  const View full = extract_view(cycle, 5, 30);
  EXPECT_EQ(full.size(), 20u);
  EXPECT_EQ(full.center, 0u);
  EXPECT_EQ(full.inputs[0], cycle.inputs[5]);

  Instance path = random_instance(Topology::kDirectedPath, 20, 2, rng);
  const View pv = extract_view(path, 2, 5);
  EXPECT_TRUE(pv.sees_left_end);
  EXPECT_FALSE(pv.sees_right_end);
  EXPECT_EQ(pv.center, 2u);
  EXPECT_EQ(pv.size(), 8u);
}

TEST(GatherAll, SolvesCatalogInstances) {
  Rng rng(2);
  for (const auto& entry : catalog::validation_catalog()) {
    if (entry.expected == ComplexityClass::kUnsolvable) continue;
    const PairwiseProblem& p = entry.problem;
    if (!is_directed(p.topology())) continue;
    GatherAllAlgorithm algorithm(p);
    for (std::size_t n : {4u, 9u, 16u}) {
      Instance instance = random_instance(p.topology(), n, p.num_inputs(), rng);
      const auto result = simulate(algorithm, p, instance);
      EXPECT_TRUE(result.verdict.ok)
          << p.name() << " n=" << n << ": " << result.verdict.reason;
    }
  }
}

// Undirected views are canonicalized (the storage orientation must not
// leak), so the gather-all baseline has to agree on one labeling although
// different nodes may receive opposite presentations of the same cycle.
TEST(GatherAll, SolvesUndirectedInstances) {
  Rng rng(12);
  for (const Topology topology :
       {Topology::kUndirectedCycle, Topology::kUndirectedPath}) {
    for (PairwiseProblem p :
         {catalog::coloring(3, topology), catalog::copy_input(topology)}) {
      GatherAllAlgorithm algorithm(p);
      for (std::size_t n : {4u, 9u, 17u}) {
        Instance instance = random_instance(p.topology(), n, p.num_inputs(), rng);
        const auto result = simulate(algorithm, p, instance);
        EXPECT_TRUE(result.verdict.ok)
            << p.name() << " on " << to_string(topology) << " n=" << n << ": "
            << result.verdict.reason;
      }
    }
  }
}

TEST(Views, UndirectedWindowsAreCanonicalized) {
  Rng rng(13);
  Instance cycle = random_instance(Topology::kUndirectedCycle, 40, 2, rng);
  Instance mirrored = cycle;
  std::reverse(mirrored.inputs.begin(), mirrored.inputs.end());
  std::reverse(mirrored.ids.begin(), mirrored.ids.end());
  for (std::size_t v = 0; v < cycle.size(); ++v) {
    const View a = extract_view(cycle, v, 7);
    const View b = extract_view(mirrored, cycle.size() - 1 - v, 7);
    EXPECT_EQ(a.ids, b.ids) << "node " << v;
    EXPECT_EQ(a.inputs, b.inputs) << "node " << v;
    EXPECT_EQ(a.center, b.center) << "node " << v;
  }
  // Path windows seeing an end keep global order (end identity is
  // content); middle windows are canonicalized like cycle windows.
  Instance path = random_instance(Topology::kUndirectedPath, 60, 2, rng);
  const View end_view = extract_view(path, 2, 5);
  EXPECT_TRUE(end_view.sees_left_end);
  EXPECT_EQ(end_view.inputs[2], path.inputs[2]);
  Instance path_mirror = path;
  std::reverse(path_mirror.inputs.begin(), path_mirror.inputs.end());
  std::reverse(path_mirror.ids.begin(), path_mirror.ids.end());
  const View mid_a = extract_view(path, 30, 6);
  const View mid_b = extract_view(path_mirror, path.size() - 1 - 30, 6);
  EXPECT_EQ(mid_a.ids, mid_b.ids);
  EXPECT_EQ(mid_a.inputs, mid_b.inputs);
}

TEST(ColeVishkin, StepReducesAndKeepsProper) {
  Rng rng(3);
  const std::size_t n = 500;
  std::vector<std::uint64_t> color(n);
  std::vector<std::size_t> ids = rng.permutation(n);
  for (std::size_t v = 0; v < n; ++v) color[v] = ids[v];
  for (std::size_t step = 0; step < cv_steps_for_ids(); ++step) {
    std::vector<std::uint64_t> next(n);
    for (std::size_t v = 0; v < n; ++v) next[v] = cv_step(color[v], color[(v + 1) % n]);
    color = next;
    for (std::size_t v = 0; v < n; ++v) {
      ASSERT_NE(color[v], color[(v + 1) % n]) << "step " << step;
    }
  }
  for (std::size_t v = 0; v < n; ++v) EXPECT_LT(color[v], 6u);
}

TEST(ColeVishkin, ThreeColoringViaViews) {
  Rng rng(4);
  for (std::size_t n : {50u, 173u}) {
    Instance instance = random_instance(Topology::kDirectedCycle, n, 2, rng);
    std::vector<std::size_t> colors(n);
    for (std::size_t v = 0; v < n; ++v) {
      colors[v] = cv_three_color(extract_view(instance, v, cv_radius()));
      EXPECT_LT(colors[v], 3u);
    }
    for (std::size_t v = 0; v < n; ++v) {
      EXPECT_NE(colors[v], colors[(v + 1) % n]) << "n=" << n << " v=" << v;
    }
  }
}

TEST(ColeVishkin, SpacedMisIsMaximalIndependent) {
  Rng rng(5);
  const std::size_t n = 300;
  Instance instance = random_instance(Topology::kDirectedCycle, n, 2, rng);
  std::vector<char> member(n);
  const std::size_t radius = cv_spaced_mis_radius(1);
  for (std::size_t v = 0; v < n; ++v) {
    member[v] = cv_spaced_mis(extract_view(instance, v, radius), 1) ? 1 : 0;
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (member[v]) {
      EXPECT_FALSE(member[(v + 1) % n]) << v;
    }
    EXPECT_TRUE(member[v] || member[(v + 1) % n] || member[(v + n - 1) % n]) << v;
  }
}

TEST(RulingSet, GapsWithinBounds) {
  Rng rng(6);
  for (std::size_t min_gap : {8u, 20u, 40u}) {
    const std::size_t m = ruling_min_gap(min_gap);
    EXPECT_GE(m, min_gap);
    const std::size_t radius = ruling_radius(min_gap);
    const std::size_t n = 6 * radius + 7;
    Instance instance = random_instance(Topology::kDirectedCycle, n, 2, rng);
    std::vector<std::size_t> members;
    for (std::size_t v = 0; v < n; ++v) {
      if (ruling_member(extract_view(instance, v, radius), min_gap)) members.push_back(v);
    }
    ASSERT_GE(members.size(), 2u) << "min_gap " << min_gap;
    for (std::size_t k = 0; k < members.size(); ++k) {
      const std::size_t gap = k + 1 < members.size()
                                  ? members[k + 1] - members[k]
                                  : members[0] + n - members.back();
      EXPECT_GE(gap, m) << "min_gap " << min_gap << " at member " << members[k];
      EXPECT_LE(gap, 2 * m) << "min_gap " << min_gap << " at member " << members[k];
    }
  }
}

TEST(RulingSet, WindowAgreementLocality) {
  Rng rng(7);
  const std::size_t min_gap = 16;
  const std::size_t radius = ruling_radius(min_gap);
  const std::size_t n = 4 * radius + 11;
  Instance a = random_instance(Topology::kDirectedCycle, n, 2, rng);
  Instance b = a;
  const std::size_t far = (2 * radius + 50) % n;
  b.ids[far] = 999'999;
  const bool ma = ruling_member(extract_view(a, 0, radius), min_gap);
  const bool mb = ruling_member(extract_view(b, 0, radius), min_gap);
  EXPECT_EQ(ma, mb);
}

// Real boundaries (path ends / orientation flips) anchor the ruling-set
// construction: member flags are trusted to the boundary, gaps stay in
// [m, 2m] and the boundary-to-first-member distance stays below 2m.
TEST(RulingSet, SegmentRealEndsAnchorTheConstruction) {
  Rng rng(14);
  for (std::size_t min_gap : {8u, 20u}) {
    const std::size_t m = ruling_min_gap(min_gap);
    for (int trial = 0; trial < 6; ++trial) {
      const std::size_t len = 20 * m + rng.next_below(10 * m);
      std::vector<NodeId> ids;
      for (std::size_t id : rng.permutation(len)) ids.push_back(id);
      const auto member = ruling_members_segment(ids, min_gap, true, true);
      std::vector<std::size_t> pos;
      for (std::size_t i = 0; i < len; ++i) {
        if (member[i]) pos.push_back(i);
      }
      ASSERT_GE(pos.size(), 2u);
      EXPECT_LT(pos.front() + 1, 2 * m);  // anchored at the left boundary
      EXPECT_LT(len - pos.back(), 2 * m + 1);
      for (std::size_t k = 0; k + 1 < pos.size(); ++k) {
        const std::size_t gap = pos[k + 1] - pos[k];
        EXPECT_GE(gap + 1, m) << "trial " << trial << " at " << pos[k];
        EXPECT_LE(gap, 2 * m) << "trial " << trial << " at " << pos[k];
      }
    }
  }
}

// The windowless directed-cycle entry point must be unchanged by the
// segment generalization (no real boundaries = the old construction).
TEST(RulingSet, WindowDelegatesToSegment) {
  Rng rng(15);
  std::vector<NodeId> ids;
  for (std::size_t id : rng.permutation(600)) ids.push_back(id);
  EXPECT_EQ(ruling_members_window(ids, 16), ruling_members_segment(ids, 16, false, false));
}

// The O(len) sliding-window orientation must agree with the per-node
// orient() rule wherever both have their margins.
TEST(Orientation, WindowDirectionsMatchOrient) {
  Rng rng(16);
  const std::size_t ell = 5;
  const std::size_t radius = orientation_radius(ell);
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t n = 150 + rng.next_below(60);
    Instance instance = random_instance(Topology::kDirectedCycle, n, 2, rng);
    if (trial == 1) {
      for (std::size_t v = 0; v < n; ++v) instance.ids[v] = v;  // monotone
    }
    const std::vector<Direction> expected = orient_all(instance, ell);
    // Evaluate the window form on each node's window and compare centers.
    const std::size_t margin = orientation_window_margin(ell);
    for (std::size_t v = 0; v < n; ++v) {
      const View view = extract_view(instance, v, radius);
      if (view.size() == view.n) break;  // orient() switches to global rule
      const auto dirs = orientation_directions_window(view.ids, ell);
      ASSERT_GE(view.center, margin);
      EXPECT_EQ(dirs[view.center], expected[v]) << "node " << v << " trial " << trial;
    }
  }
}

TEST(Orientation, RunsAreLongOnAdversarialIds) {
  const std::size_t ell = 5;
  Rng rng(8);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 120 + rng.next_below(80);
    Instance instance = random_instance(Topology::kDirectedCycle, n, 2, rng);
    if (trial == 1) {  // monotone IDs: the classic hard case for peak rules
      for (std::size_t v = 0; v < n; ++v) instance.ids[v] = v;
    }
    if (trial == 2) {  // zigzag
      for (std::size_t v = 0; v < n; ++v) instance.ids[v] = (v % 2 == 0) ? v : n + v;
    }
    const auto directions = orient_all(instance, ell);
    std::vector<std::size_t> run_lengths;
    std::size_t start = 0;
    while (start < n && directions[start] == directions[(start + n - 1) % n]) ++start;
    if (start == n) {
      run_lengths.push_back(n);
    } else {
      std::size_t count = 1;
      for (std::size_t k = 1; k <= n; ++k) {
        const std::size_t v = (start + k) % n;
        if (k < n && directions[v] == directions[(start + k - 1) % n]) {
          ++count;
        } else {
          run_lengths.push_back(count);
          count = 1;
        }
        if (k == n) break;
      }
    }
    for (std::size_t len : run_lengths) {
      EXPECT_GE(len, ell) << "trial " << trial << " n=" << n;
    }
  }
}

TEST(Lemma20, IrregularIndependentSet) {
  Rng rng(9);
  const std::size_t gamma = 4;
  const std::size_t l = 16;
  Word inputs;
  for (std::size_t v = 0; v < 400; ++v) {
    inputs.push_back(static_cast<Label>(rng.next_below(3)));
  }
  const auto member = irregular_independent_set(inputs, gamma, l);
  std::ptrdiff_t last = -1;
  for (std::size_t v = 0; v + l <= inputs.size(); ++v) {
    if (!member[v]) continue;
    if (last >= 0 && v - static_cast<std::size_t>(last) <= gamma) {
      // Members this close must have identical windows — impossible in an
      // irregular stretch unless the word happened to repeat; verify.
      bool same = true;
      for (std::size_t k = 0; k < l && same; ++k) {
        same = inputs[v + k] == inputs[static_cast<std::size_t>(last) + k];
      }
      EXPECT_TRUE(same) << "close members with distinct windows at " << v;
    }
    last = static_cast<std::ptrdiff_t>(v);
  }
}

TEST(Partition, InvariantsOnRandomAndPeriodicInputs) {
  Rng rng(10);
  PartitionParams params;
  params.l_width = 3;
  params.l_count = 4;
  params.l_pattern = 3;
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 60 + rng.next_below(120);
    Instance instance =
        trial % 3 == 0 ? periodic_instance(Topology::kDirectedCycle, n, {0, 1}, rng)
                       : random_instance(Topology::kDirectedCycle, n, 2, rng);
    const Partition part = partition(instance, params);
    const auto failure = check_partition(instance, params, part);
    EXPECT_FALSE(failure.has_value()) << "trial " << trial << ": "
                                      << (failure ? *failure : "");
  }
}

TEST(Partition, WholePeriodicCycleDetected) {
  Rng rng(11);
  PartitionParams params{3, 4, 3};
  Instance instance = periodic_instance(Topology::kDirectedCycle, 60, {0, 1}, rng);
  const Partition part = partition(instance, params);
  EXPECT_TRUE(part.whole_cycle_periodic);
  ASSERT_EQ(part.components.size(), 1u);
  EXPECT_TRUE(part.components[0].long_component);
  EXPECT_EQ(part.components[0].pattern, (Word{0, 1}));
}

}  // namespace
}  // namespace lclpath
