#include <gtest/gtest.h>

#include "automata/monoid.hpp"
#include "automata/pumping.hpp"
#include "automata/solvability.hpp"
#include "automata/type.hpp"
#include "test_util.hpp"

namespace lclpath {
namespace {

using testing::all_valid_labelings;
using testing::automata_fixture;

Word random_word(Rng& rng, std::size_t alpha, std::size_t n) {
  Word w;
  for (std::size_t i = 0; i < n; ++i) w.push_back(static_cast<Label>(rng.next_below(alpha)));
  return w;
}

// N(w)[x][y] == "there is a labeling of w ending in y whose virtual
// predecessor x is compatible", cross-checked against brute force.
TEST(Transition, WordMatrixSemantics) {
  const PairwiseProblem p = automata_fixture();
  const TransitionSystem ts = TransitionSystem::build(p);
  Rng rng(31);
  for (int trial = 0; trial < 25; ++trial) {
    const Word w = random_word(rng, p.num_inputs(), 1 + rng.next_below(4));
    const BitMatrix n = ts.word_matrix(w);
    for (Label x = 0; x < p.num_outputs(); ++x) {
      for (Label y = 0; y < p.num_outputs(); ++y) {
        // Brute force: any labeling z of w with z.back() == y, all node
        // checks, internal edges, and edge(x, z[0]).
        bool expect = false;
        const std::size_t beta = p.num_outputs();
        Word z(w.size(), 0);
        while (!expect) {
          bool ok = z.back() == y && p.edge_ok(x, z[0]);
          for (std::size_t i = 0; i < w.size() && ok; ++i) {
            ok = p.node_ok(w[i], z[i]) && (i == 0 || p.edge_ok(z[i - 1], z[i]));
          }
          expect = ok;
          std::size_t i = z.size();
          bool done = false;
          while (i > 0) {
            --i;
            if (++z[i] < beta) break;
            z[i] = 0;
            if (i == 0) done = true;
          }
          if (done) break;
        }
        ASSERT_EQ(n.get(x, y), expect) << "x=" << x << " y=" << y;
      }
    }
  }
}

TEST(Transition, ReversedMatrixMatchesReversedWord) {
  const PairwiseProblem p = automata_fixture();
  const TransitionSystem ts = TransitionSystem::build(p);
  Rng rng(32);
  for (int trial = 0; trial < 40; ++trial) {
    const Word w = random_word(rng, p.num_inputs(), 1 + rng.next_below(6));
    EXPECT_EQ(ts.word_matrix_reversed(w), ts.word_matrix(reversed(w)));
  }
}

TEST(Transition, PrefixVectorMatchesDp) {
  const PairwiseProblem p = automata_fixture(Topology::kDirectedPath);
  const TransitionSystem ts = TransitionSystem::build(p);
  Rng rng(33);
  for (int trial = 0; trial < 40; ++trial) {
    const Word w = random_word(rng, p.num_inputs(), 1 + rng.next_below(5));
    const BitVector v = ts.prefix_vector(w);
    const auto labelings = all_valid_labelings(
        [&] {
          PairwiseProblem q = p;
          q.set_topology(Topology::kDirectedPath);
          return q;
        }(),
        w);
    BitVector expect(p.num_outputs());
    for (const Word& l : labelings) expect.set(l.back(), true);
    EXPECT_EQ(v, expect) << word_to_string(p.inputs(), w);
  }
}

TEST(Monoid, ElementDataMatchesDirectComputation) {
  const PairwiseProblem p = automata_fixture();
  const TransitionSystem ts = TransitionSystem::build(p);
  const Monoid monoid = Monoid::enumerate(ts);
  EXPECT_GT(monoid.size(), 1u);
  Rng rng(34);
  for (int trial = 0; trial < 60; ++trial) {
    const Word w = random_word(rng, p.num_inputs(), 1 + rng.next_below(10));
    const MonoidElement& e = monoid.element(monoid.of_word(w));
    EXPECT_EQ(e.fwd, ts.word_matrix(w));
    EXPECT_EQ(e.rev, ts.word_matrix(reversed(w)));
    EXPECT_EQ(e.anchored, ts.anchored_matrix(w));
    EXPECT_EQ(e.pvec, ts.prefix_vector(w));
    EXPECT_EQ(e.first, w.front());
    EXPECT_EQ(e.last, w.back());
    // The reconstructed witness maps back to the same element.
    EXPECT_EQ(monoid.of_word(monoid.witness(monoid.of_word(w))), monoid.of_word(w));
  }
}

TEST(Monoid, ReversalMapIsCorrectAndInvolutive) {
  const PairwiseProblem p = automata_fixture();
  const Monoid monoid = Monoid::enumerate(TransitionSystem::build(p));
  for (std::size_t e = 0; e < monoid.size(); ++e) {
    const std::size_t r = monoid.reversed_index(e);
    EXPECT_EQ(monoid.reversed_index(r), e);
    EXPECT_EQ(monoid.of_word(reversed(monoid.witness(e))), r);
  }
}

TEST(Monoid, LayersMatchLayerAt) {
  const PairwiseProblem p = automata_fixture();
  const Monoid monoid = Monoid::enumerate(TransitionSystem::build(p));
  const auto layers = monoid.layers(12);
  for (std::size_t length = 1; length <= 12; ++length) {
    auto expected = layers[length - 1];
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(monoid.layer_at(length), expected) << "length " << length;
  }
  // Far lengths go through the cycle detector; cross-check against an
  // explicitly computed long layer.
  const auto far = monoid.layers(60);
  auto expected = far[59];
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(monoid.layer_at(60), expected);
}

TEST(Monoid, LayerWitnessesHaveRightLengthAndElement) {
  const PairwiseProblem p = automata_fixture();
  const Monoid monoid = Monoid::enumerate(TransitionSystem::build(p));
  for (std::size_t length : {1u, 2u, 5u, 9u}) {
    const auto witnesses = monoid.layer_witnesses(length);
    auto layer = monoid.layer_at(length);
    EXPECT_EQ(witnesses.size(), layer.size());
    for (const auto& [element, word] : witnesses) {
      EXPECT_EQ(word.size(), length);
      EXPECT_EQ(monoid.of_word(word), element);
    }
  }
}

// Lemma 12: Type(w sigma) is a function of Type(w) and sigma — our
// refinement: equal monoid elements stay equal under extension.
TEST(Types, ExtensionWellDefined) {
  const PairwiseProblem p = automata_fixture();
  const TransitionSystem ts = TransitionSystem::build(p);
  const Monoid monoid = Monoid::enumerate(ts);
  Rng rng(35);
  for (int trial = 0; trial < 30; ++trial) {
    const Word w1 = random_word(rng, p.num_inputs(), 2 + rng.next_below(8));
    const std::size_t e = monoid.of_word(w1);
    // Find another word with the same element by re-walking the witness.
    const Word w2 = monoid.witness(e);
    for (Label sigma = 0; sigma < p.num_inputs(); ++sigma) {
      EXPECT_EQ(monoid.of_word(concat(w1, {sigma})), monoid.of_word(concat(w2, {sigma})));
    }
  }
}

// Ground truth for Section 4.1: extendibility of boundary labelings is
// exactly the matrix condition in type_of/extendible.
TEST(Types, ExtendibilityMatchesBruteForce) {
  const PairwiseProblem p = automata_fixture();
  const TransitionSystem ts = TransitionSystem::build(p);
  Rng rng(36);
  for (int trial = 0; trial < 10; ++trial) {
    const Word w = random_word(rng, p.num_inputs(), 4 + rng.next_below(2));
    const std::size_t beta = p.num_outputs();
    for (Label a0 = 0; a0 < beta; ++a0) {
      for (Label a1 = 0; a1 < beta; ++a1) {
        for (Label b0 = 0; b0 < beta; ++b0) {
          // b1 does not influence extendibility; test one value.
          const bool fast = extendible(ts, w, {a0, a1, b0, 0});
          // Brute force over middle labelings.
          bool expect = false;
          const std::size_t mid = w.size() - 4 + 2;  // positions 2..k-3 free
          (void)mid;
          Word z(w.size(), 0);
          z[0] = a0;
          z[1] = a1;
          z[w.size() - 2] = b0;
          // Enumerate free positions 2..k-3.
          const std::size_t free_count = w.size() - 4;
          std::vector<std::size_t> idx(free_count);
          for (std::size_t i = 0; i < free_count; ++i) idx[i] = 2 + i;
          Word assignment(free_count, 0);
          while (!expect) {
            for (std::size_t i = 0; i < free_count; ++i) z[idx[i]] = assignment[i];
            bool ok = true;
            for (std::size_t v = 1; v + 1 < w.size() && ok; ++v) {
              ok = p.node_ok(w[v], z[v]) && p.edge_ok(z[v - 1], z[v]);
            }
            expect = ok;
            if (free_count == 0) break;
            std::size_t i = free_count;
            bool done = false;
            while (i > 0) {
              --i;
              if (++assignment[i] < beta) break;
              assignment[i] = 0;
              if (i == 0) done = true;
            }
            if (done) break;
          }
          ASSERT_EQ(fast, expect)
              << word_to_string(p.inputs(), w) << " a0=" << a0 << " a1=" << a1
              << " b0=" << b0;
        }
      }
    }
  }
}

// Lemma 14: the pump decomposition preserves the monoid element for every
// exponent, and Lemma 10/11's consequence holds: valid labelings survive
// pumping (checked via solvability of pumped cycles).
TEST(Pumping, DecompositionPreservesElement) {
  const PairwiseProblem p = automata_fixture();
  const Monoid monoid = Monoid::enumerate(TransitionSystem::build(p));
  Rng rng(37);
  int found = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const Word w = random_word(rng, p.num_inputs(),
                               monoid.size() + 5 + rng.next_below(5));
    const auto d = pump_decomposition(monoid, w);
    ASSERT_TRUE(d.has_value()) << "long words must pump";
    ++found;
    EXPECT_GE(d->y.size(), 1u);
    EXPECT_EQ(d->pumped(1), w);
    for (std::size_t i : {0u, 2u, 3u, 7u}) {
      EXPECT_EQ(monoid.of_word(d->pumped(i)), monoid.of_word(w)) << "i=" << i;
    }
  }
  EXPECT_EQ(found, 50);
}

TEST(Pumping, PumpToLengthReachesTarget) {
  const PairwiseProblem p = automata_fixture();
  const Monoid monoid = Monoid::enumerate(TransitionSystem::build(p));
  Rng rng(38);
  const Word w = random_word(rng, p.num_inputs(), monoid.size() + 6);
  const auto pumped = pump_to_length(monoid, w, 500);
  ASSERT_TRUE(pumped.has_value());
  EXPECT_GE(pumped->size(), 500u);
  EXPECT_EQ(monoid.of_word(*pumped), monoid.of_word(w));
}

TEST(Pumping, PowerPumpFindsCycle) {
  const PairwiseProblem p = automata_fixture();
  const Monoid monoid = Monoid::enumerate(TransitionSystem::build(p));
  Rng rng(39);
  for (int trial = 0; trial < 10; ++trial) {
    const Word w = random_word(rng, p.num_inputs(), 1 + rng.next_below(4));
    const PowerPump pump = power_pump(monoid, w);
    EXPECT_GE(pump.b, 1u);
    EXPECT_EQ(monoid.of_word(repeated(w, pump.a)),
              monoid.of_word(repeated(w, pump.a + pump.b)));
  }
}

TEST(Solvability, CatalogVerdicts) {
  struct Case {
    PairwiseProblem problem;
    bool solvable;
  };
  const Case cases[] = {
      {catalog::coloring(3), true},
      {catalog::two_coloring(), false},                           // odd cycles
      {catalog::two_coloring(Topology::kDirectedPath), true},
      {catalog::agreement(), true},
      {catalog::agreement(Topology::kDirectedPath), true},
      {catalog::empty_problem(), false},
      {catalog::prefix_parity(Topology::kDirectedCycle), false},  // odd parity
      {catalog::prefix_parity(Topology::kDirectedPath), true},
      {catalog::maximal_independent_set(), true},
  };
  for (const Case& c : cases) {
    const Monoid monoid = Monoid::enumerate(TransitionSystem::build(c.problem));
    const auto report = check_solvability(monoid, c.problem.topology());
    EXPECT_EQ(report.solvable, c.solvable) << c.problem.name();
    if (!report.solvable) {
      ASSERT_TRUE(report.counterexample.has_value());
      // The counterexample really has no labeling.
      EXPECT_FALSE(solve_by_dp(c.problem, *report.counterexample).has_value())
          << c.problem.name() << ": "
          << word_to_string(c.problem.inputs(), *report.counterexample);
    }
  }
}

TEST(Solvability, TwoColoringCounterexampleIsOddCycle) {
  const PairwiseProblem p = catalog::two_coloring();
  const Monoid monoid = Monoid::enumerate(TransitionSystem::build(p));
  const auto report = check_solvability(monoid, p.topology());
  ASSERT_FALSE(report.solvable);
  EXPECT_EQ(report.counterexample->size() % 2, 1u);
  EXPECT_GE(report.counterexample->size(), 3u);
}

}  // namespace
}  // namespace lclpath
