#include <gtest/gtest.h>

#include "decide/classifier.hpp"
#include "test_util.hpp"

namespace lclpath {
namespace {

// Lemma 17: the synthesized Theta(log* n) algorithm solves every instance
// of every log*-class catalog problem, at a radius independent of n.
TEST(SynthesizedLogStar, SolvesColoringAndMis) {
  Rng rng(101);
  for (PairwiseProblem problem :
       {catalog::coloring(3), catalog::maximal_independent_set(),
        catalog::input_gated_coloring()}) {
    const ClassifiedProblem result = classify(problem);
    ASSERT_EQ(result.complexity(), ComplexityClass::kLogStar) << result.summary();
    const auto algorithm = result.synthesize();
    const std::size_t r = algorithm->radius(1 << 20);
    // Large instances: blocks + completions; small: full-view fallback.
    for (std::size_t n : {std::size_t{7}, 2 * r + 5, 3 * r + 31}) {
      Instance instance = random_instance(problem.topology(), n, problem.num_inputs(), rng);
      const auto sim = simulate(*algorithm, problem, instance);
      EXPECT_TRUE(sim.verdict.ok)
          << problem.name() << " n=" << n << ": " << sim.verdict.reason;
    }
  }
}

TEST(SynthesizedLogStar, RadiusIndependentOfN) {
  const ClassifiedProblem result = classify(catalog::coloring(3));
  const auto algorithm = result.synthesize();
  // Constant in the structured regime; clamped to the full-view threshold
  // below it, so the advertised radius never exceeds the instance.
  EXPECT_EQ(algorithm->radius(1 << 20), algorithm->radius(1000000000));
  for (std::size_t n : {1u, 2u, 5u, 16u, 100u}) {
    EXPECT_LE(algorithm->radius(n), n) << "n=" << n;
  }
}

// Lemma 27: the synthesized O(1) algorithm on constant-class problems.
// One test per problem/instance shape — these simulations cost O(radius^2)
// with radii in the thousands, and separate tests let ctest run them in
// parallel and fit each one inside the Debug/sanitizer CI job budget (the
// monolithic originals had to be excluded from those jobs entirely).
void ExpectConstantSynthesisSolves(const PairwiseProblem& problem, std::uint64_t seed) {
  Rng rng(seed);
  const ClassifiedProblem result = classify(problem);
  ASSERT_EQ(result.complexity(), ComplexityClass::kConstant) << result.summary();
  const auto algorithm = result.synthesize();
  const std::size_t r = algorithm->radius(1 << 20);
  for (std::size_t n : {std::size_t{9}, 2 * r + 7}) {
    Instance instance = random_instance(problem.topology(), n, problem.num_inputs(), rng);
    const auto sim = simulate(*algorithm, problem, instance);
    EXPECT_TRUE(sim.verdict.ok)
        << problem.name() << " n=" << n << ": " << sim.verdict.reason;
  }
}

TEST(SynthesizedConstant, SolvesConstantOutput) {
  ExpectConstantSynthesisSolves(catalog::constant_output(), 102);
}

TEST(SynthesizedConstant, SolvesAlwaysAccept) {
  ExpectConstantSynthesisSolves(catalog::always_accept(), 102);
}

// Periodic, random, and mixed inputs exercise the long-region anchors, the
// irregular chunk pumping, and their boundaries respectively (split from
// one three-instance test for the same CI-budget reason as above).
enum class CopyInputShape { kPeriodic, kRandom, kMixed };

void ExpectCopyInputSolves(CopyInputShape shape) {
  Rng rng(103);
  const PairwiseProblem problem = catalog::copy_input();
  const ClassifiedProblem result = classify(problem);
  ASSERT_EQ(result.complexity(), ComplexityClass::kConstant) << result.summary();
  const auto algorithm = result.synthesize();
  const std::size_t r = algorithm->radius(1 << 20);
  const std::size_t n = 2 * r + 9;
  Instance instance = shape == CopyInputShape::kPeriodic
                          ? periodic_instance(problem.topology(), n, {0, 1}, rng)
                          : random_instance(problem.topology(), n, 2, rng);
  if (shape == CopyInputShape::kMixed) {
    for (std::size_t v = n / 4; v < (3 * n) / 4; ++v) instance.inputs[v] = v % 2;
  }
  const auto sim = simulate(*algorithm, problem, instance);
  EXPECT_TRUE(sim.verdict.ok) << sim.verdict.reason;
}

TEST(SynthesizedConstant, CopyInputOnPeriodicInstance) {
  ExpectCopyInputSolves(CopyInputShape::kPeriodic);
}

TEST(SynthesizedConstant, CopyInputOnRandomInstance) {
  ExpectCopyInputSolves(CopyInputShape::kRandom);
}

TEST(SynthesizedConstant, CopyInputOnMixedInstance) {
  ExpectCopyInputSolves(CopyInputShape::kMixed);
}

// Locality property: an algorithm's output at a node may depend only on
// the window it was shown — equal windows on different instances must
// produce equal outputs. This is locality "by construction" in the view
// interface; the test guards against margin bugs.
TEST(Synthesized, WindowAgreementProperty) {
  Rng rng(104);
  const PairwiseProblem problem = catalog::coloring(3);
  const ClassifiedProblem result = classify(problem);
  const auto algorithm = result.synthesize();
  const std::size_t r = algorithm->radius(1 << 20);
  const std::size_t n = 2 * r + 41;
  Instance a = random_instance(problem.topology(), n, 1, rng);
  Instance b = a;
  // Permute IDs outside node 0's window.
  const std::size_t far_lo = r + 5;
  const std::size_t far_hi = n - r - 5;
  for (std::size_t v = far_lo; v + 1 < far_hi; v += 2) {
    std::swap(b.ids[v], b.ids[v + 1]);
  }
  const View va = extract_view(a, 0, r);
  const View vb = extract_view(b, 0, r);
  ASSERT_EQ(va.ids, vb.ids);
  EXPECT_EQ(algorithm->run(va), algorithm->run(vb));
}

// The Theta(n) baseline is exact on linear-class problems, and the
// synthesized algorithm for them *is* the baseline.
TEST(SynthesizedLinear, AgreementUsesGatherAll) {
  Rng rng(105);
  const PairwiseProblem problem = catalog::agreement();
  const ClassifiedProblem result = classify(problem);
  ASSERT_EQ(result.complexity(), ComplexityClass::kLinear);
  const auto algorithm = result.synthesize();
  EXPECT_EQ(algorithm->name(), "gather-all");
  for (std::size_t n : {5u, 23u, 64u}) {
    Instance instance = random_instance(problem.topology(), n, problem.num_inputs(), rng);
    const auto sim = simulate(*algorithm, problem, instance);
    EXPECT_TRUE(sim.verdict.ok) << sim.verdict.reason;
  }
}

// The three-regime round-complexity separation (experiment E9's shape):
// measured radii are constant for O(1)/log*-synthesized algorithms and
// linear for the gather-all baseline.
TEST(Synthesized, ThreeRegimeRadiusShape) {
  const auto constant = classify(catalog::constant_output()).synthesize();
  const auto logstar = classify(catalog::coloring(3)).synthesize();
  const auto linear = classify(catalog::agreement()).synthesize();
  const std::size_t n1 = 1 << 12, n2 = 1 << 20;
  EXPECT_EQ(constant->radius(n1), constant->radius(n2));
  EXPECT_EQ(logstar->radius(n1), logstar->radius(n2));
  EXPECT_EQ(linear->radius(n1), n1);
  EXPECT_EQ(linear->radius(n2), n2);
  EXPECT_LT(constant->radius(n2), n2);
  EXPECT_LT(logstar->radius(n2), n2);
}

}  // namespace
}  // namespace lclpath
