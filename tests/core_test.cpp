#include <gtest/gtest.h>

#include <unordered_set>

#include "core/alphabet.hpp"
#include "core/bitmatrix.hpp"
#include "core/rng.hpp"

namespace lclpath {
namespace {

TEST(BitMatrix, IdentityIsMultiplicativeUnit) {
  for (std::size_t dim : {1u, 3u, 7u, 64u, 65u, 130u}) {
    Rng rng(dim);
    BitMatrix m(dim);
    for (int k = 0; k < 50; ++k) {
      m.set(rng.next_below(dim), rng.next_below(dim), true);
    }
    const BitMatrix id = BitMatrix::identity(dim);
    EXPECT_EQ(m * id, m) << "dim " << dim;
    EXPECT_EQ(id * m, m) << "dim " << dim;
  }
}

TEST(BitMatrix, MultiplicationMatchesNaive) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t dim = 1 + rng.next_below(70);
    BitMatrix a(dim), b(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      for (std::size_t j = 0; j < dim; ++j) {
        a.set(i, j, rng.next_bool());
        b.set(i, j, rng.next_bool());
      }
    }
    const BitMatrix fast = a * b;
    for (std::size_t i = 0; i < dim; ++i) {
      for (std::size_t j = 0; j < dim; ++j) {
        bool expect = false;
        for (std::size_t k = 0; k < dim && !expect; ++k) {
          expect = a.get(i, k) && b.get(k, j);
        }
        ASSERT_EQ(fast.get(i, j), expect) << i << "," << j << " dim=" << dim;
      }
    }
  }
}

TEST(BitMatrix, MultiplicationAssociative) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t dim = 1 + rng.next_below(40);
    BitMatrix m[3] = {BitMatrix(dim), BitMatrix(dim), BitMatrix(dim)};
    for (auto& mat : m) {
      for (int k = 0; k < static_cast<int>(dim * 2); ++k) {
        mat.set(rng.next_below(dim), rng.next_below(dim), true);
      }
    }
    EXPECT_EQ((m[0] * m[1]) * m[2], m[0] * (m[1] * m[2]));
  }
}

TEST(BitMatrix, PowerMatchesRepeatedMultiplication) {
  Rng rng(9);
  const std::size_t dim = 9;
  BitMatrix m(dim);
  for (int k = 0; k < 14; ++k) m.set(rng.next_below(dim), rng.next_below(dim), true);
  BitMatrix acc = BitMatrix::identity(dim);
  for (std::uint64_t e = 0; e <= 12; ++e) {
    EXPECT_EQ(m.power(e), acc) << "exponent " << e;
    acc *= m;
  }
}

TEST(BitMatrix, StabilizeFindsPowerCycle) {
  Rng rng(11);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t dim = 2 + rng.next_below(8);
    BitMatrix m(dim);
    for (int k = 0; k < static_cast<int>(dim + 3); ++k) {
      m.set(rng.next_below(dim), rng.next_below(dim), true);
    }
    const auto stab = m.stabilize();
    EXPECT_GE(stab.period, 1u);
    EXPECT_EQ(m.power(stab.first), m.power(stab.first + stab.period));
    EXPECT_EQ(stab.stable_power, m.power(stab.first));
  }
}

TEST(BitMatrix, TransposeInvolution) {
  Rng rng(5);
  const std::size_t dim = 67;
  BitMatrix m(dim);
  for (int k = 0; k < 200; ++k) m.set(rng.next_below(dim), rng.next_below(dim), true);
  EXPECT_EQ(m.transposed().transposed(), m);
  EXPECT_TRUE(m.transposed().get(3, 5) == m.get(5, 3));
}

TEST(BitVector, VectorMatrixMatchesNaive) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t dim = 1 + rng.next_below(80);
    BitMatrix m(dim);
    BitVector v(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      v.set(i, rng.next_bool());
      for (std::size_t j = 0; j < dim; ++j) m.set(i, j, rng.next_bool(1, 3));
    }
    const BitVector fast = v.multiplied(m);
    for (std::size_t j = 0; j < dim; ++j) {
      bool expect = false;
      for (std::size_t i = 0; i < dim && !expect; ++i) expect = v.get(i) && m.get(i, j);
      ASSERT_EQ(fast.get(j), expect);
    }
  }
}

TEST(BitVector, IntersectsAndCounts) {
  BitVector a(130), b(130);
  a.set(0, true);
  a.set(129, true);
  b.set(64, true);
  EXPECT_FALSE(a.intersects(b));
  b.set(129, true);
  EXPECT_TRUE(a.intersects(b));
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ((a | b).count(), 3u);
  EXPECT_EQ((a & b).count(), 1u);
}

TEST(BitVector, MultiplyIntoMatchesMultiplied) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t dim = 1 + rng.next_below(150);
    BitMatrix m(dim);
    BitVector v(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      v.set(i, rng.next_bool());
      for (std::size_t j = 0; j < dim; ++j) m.set(i, j, rng.next_bool(1, 3));
    }
    BitVector out(dim);
    out.set(rng.next_below(dim), true);  // stale contents must be overwritten
    v.multiply_into(m, out);
    EXPECT_EQ(out, v.multiplied(m));
  }
}

TEST(BitVector, SubsetFirstSetAndInPlaceOps) {
  BitVector a(130), b(130);
  a.set(5, true);
  a.set(129, true);
  EXPECT_EQ(a.first_set(), 5u);
  EXPECT_EQ(BitVector(130).first_set(), 130u);
  b.set(5, true);
  EXPECT_TRUE(b.subset_of(a));
  EXPECT_FALSE(a.subset_of(b));
  b.set(64, true);
  EXPECT_FALSE(b.subset_of(a));

  BitVector c = a;
  c |= b;
  EXPECT_EQ(c, a | b);
  c &= b;
  EXPECT_EQ(c, (a | b) & b);
  c.remove(a);
  EXPECT_FALSE(c.get(5));
  EXPECT_TRUE(c.get(64));
  c.clear();
  EXPECT_FALSE(c.any());
  EXPECT_EQ(c.dim(), 130u);
}

TEST(Alphabet, AddFindRoundTrip) {
  Alphabet a({"x", "y"});
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.at("x"), 0u);
  EXPECT_EQ(a.at("y"), 1u);
  EXPECT_EQ(a.name(1), "y");
  EXPECT_FALSE(a.find("z").has_value());
  EXPECT_THROW(a.at("z"), std::out_of_range);
  EXPECT_THROW(a.add("x"), std::invalid_argument);
  EXPECT_EQ(a.add_or_get("z"), 2u);
  EXPECT_EQ(a.add_or_get("z"), 2u);
}

TEST(Words, PrimitiveDetection) {
  EXPECT_TRUE(is_primitive({0}));
  EXPECT_TRUE(is_primitive({0, 1}));
  EXPECT_FALSE(is_primitive({0, 0}));
  EXPECT_FALSE(is_primitive({0, 1, 0, 1}));
  EXPECT_TRUE(is_primitive({0, 1, 0}));
  EXPECT_TRUE(is_primitive({0, 0, 1}));
  EXPECT_FALSE(is_primitive({1, 1, 1}));
}

TEST(Words, EnumerationCountsAndOrder) {
  std::size_t count = 0;
  Word previous;
  for_each_word(3, 4, [&](const Word& w) {
    if (count > 0) {
      EXPECT_LT(previous, w);
    }
    previous = w;
    ++count;
  });
  EXPECT_EQ(count, 81u);
}

TEST(Words, ReverseRepeatConcat) {
  const Word w{0, 1, 2};
  EXPECT_EQ(reversed(w), (Word{2, 1, 0}));
  EXPECT_EQ(repeated(w, 2), (Word{0, 1, 2, 0, 1, 2}));
  EXPECT_EQ(concat(w, {3}), (Word{0, 1, 2, 3}));
}

TEST(Rng, DeterministicAndBounded) {
  Rng a(123), b(123);
  for (int k = 0; k < 100; ++k) {
    const std::uint64_t bound = 1 + (static_cast<std::uint64_t>(k) * 37) % 1000;
    const auto x = a.next_below(bound);
    EXPECT_EQ(x, b.next_below(bound));
    EXPECT_LT(x, bound);
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(77);
  const auto perm = rng.permutation(100);
  std::unordered_set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
}

}  // namespace
}  // namespace lclpath
