// Differential pin for the single-pass monoid enumeration: an independent
// reference implementation of the pre-rewrite two-pass algorithm (BFS with
// per-edge materialized elements, then a second full pass re-multiplying
// every edge for the extend table and re-materializing every element for
// the reversal map) must agree with Monoid::enumerate on element count,
// element data, extend table, reversed_index, layer_at, and witnesses —
// over the full validation catalog plus the lifted monoid-90 family.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "automata/monoid.hpp"
#include "hardness/undirected.hpp"
#include "lcl/catalog.hpp"
#include "lcl/serialize.hpp"

namespace lclpath {
namespace {

struct RefElement {
  MonoidElement data;
  Word witness;
};

struct RefMonoid {
  std::vector<RefElement> elements;
  std::vector<std::size_t> extend;  // elements x inputs
  std::vector<std::size_t> reversed;
};

using RefHashBuckets = std::unordered_map<std::size_t, std::vector<std::size_t>>;

std::size_t ref_lookup(const RefMonoid& ref, const RefHashBuckets& by_hash,
                       const MonoidElement& e) {
  auto it = by_hash.find(e.data_hash());
  if (it == by_hash.end()) return ref.elements.size();
  for (std::size_t index : it->second) {
    if (ref.elements[index].data.same_data(e)) return index;
  }
  return ref.elements.size();
}

/// The retired two-pass enumeration, kept verbatim as the oracle.
RefMonoid reference_enumerate(const TransitionSystem& ts) {
  RefMonoid ref;
  RefHashBuckets by_hash;
  const std::size_t num_inputs = ts.num_inputs();

  auto intern = [&](MonoidElement&& e, Word witness) -> std::pair<std::size_t, bool> {
    const std::size_t found = ref_lookup(ref, by_hash, e);
    if (found < ref.elements.size()) return {found, false};
    const std::size_t index = ref.elements.size();
    by_hash[e.data_hash()].push_back(index);
    ref.elements.push_back({std::move(e), std::move(witness)});
    return {index, true};
  };

  std::deque<std::size_t> queue;
  for (Label sigma = 0; sigma < num_inputs; ++sigma) {
    MonoidElement e;
    e.fwd = ts.step(sigma);
    e.rev = ts.step(sigma);
    e.anchored = ts.anchored(sigma);
    e.anchored_rev = ts.anchored(sigma);
    e.pvec = ts.start_first(sigma);
    e.pvec_rev = ts.start_first(sigma);
    e.first = sigma;
    e.last = sigma;
    auto [index, fresh] = intern(std::move(e), {sigma});
    if (fresh) queue.push_back(index);
  }

  while (!queue.empty()) {
    const std::size_t index = queue.front();
    queue.pop_front();
    for (Label sigma = 0; sigma < num_inputs; ++sigma) {
      const MonoidElement src = ref.elements[index].data;  // deep copy on purpose
      const Word src_witness = ref.elements[index].witness;
      MonoidElement e;
      e.fwd = src.fwd * ts.step(sigma);
      e.rev = ts.step(sigma) * src.rev;
      e.anchored = src.anchored * ts.step(sigma);
      e.anchored_rev = ts.anchored(sigma) * src.rev;
      e.pvec = src.pvec.multiplied(ts.step(sigma));
      e.pvec_rev = ts.start_first(sigma).multiplied(src.rev);
      e.first = src.first;
      e.last = sigma;
      Word witness = src_witness;
      witness.push_back(sigma);
      auto [new_index, fresh] = intern(std::move(e), std::move(witness));
      if (fresh) queue.push_back(new_index);
    }
  }

  // Second pass: re-multiply every edge for the extend table.
  ref.extend.assign(ref.elements.size() * num_inputs, 0);
  for (std::size_t index = 0; index < ref.elements.size(); ++index) {
    for (Label sigma = 0; sigma < num_inputs; ++sigma) {
      const MonoidElement& src = ref.elements[index].data;
      MonoidElement e;
      e.fwd = src.fwd * ts.step(sigma);
      e.rev = ts.step(sigma) * src.rev;
      e.anchored = src.anchored * ts.step(sigma);
      e.anchored_rev = ts.anchored(sigma) * src.rev;
      e.pvec = src.pvec.multiplied(ts.step(sigma));
      e.pvec_rev = ts.start_first(sigma).multiplied(src.rev);
      e.first = src.first;
      e.last = sigma;
      const std::size_t found = ref_lookup(ref, by_hash, e);
      if (found >= ref.elements.size()) {
        throw std::logic_error("reference extend table hit an unknown element");
      }
      ref.extend[index * num_inputs + sigma] = found;
    }
  }
  // Re-materialize every element for the reversal map.
  ref.reversed.assign(ref.elements.size(), 0);
  for (std::size_t index = 0; index < ref.elements.size(); ++index) {
    const MonoidElement& e = ref.elements[index].data;
    MonoidElement r;
    r.fwd = e.rev;
    r.rev = e.fwd;
    r.anchored = e.anchored_rev;
    r.anchored_rev = e.anchored;
    r.pvec = e.pvec_rev;
    r.pvec_rev = e.pvec;
    r.first = e.last;
    r.last = e.first;
    const std::size_t found = ref_lookup(ref, by_hash, r);
    if (found >= ref.elements.size()) {
      throw std::logic_error("reference reversal map hit an unknown element");
    }
    ref.reversed[index] = found;
  }
  return ref;
}

std::vector<PairwiseProblem> differential_workload() {
  std::vector<PairwiseProblem> problems;
  for (const auto& entry : catalog::validation_catalog()) {
    problems.push_back(entry.problem);
  }
  // The lifted monoid-90 family (Section 3.7 lifts; coloring(3, path) is
  // the 90-element skeleton the lifted-regression suite pins).
  problems.push_back(
      hardness::lift_to_undirected(catalog::constant_output(Topology::kDirectedPath)));
  problems.push_back(
      hardness::lift_to_undirected(catalog::two_coloring(Topology::kDirectedPath)));
  problems.push_back(
      hardness::lift_to_undirected(catalog::coloring(3, Topology::kDirectedPath)));
  return problems;
}

TEST(MonoidDifferential, SinglePassMatchesTwoPassReference) {
  for (const PairwiseProblem& problem : differential_workload()) {
    SCOPED_TRACE(problem.name());
    const TransitionSystem ts = TransitionSystem::build(problem);
    const Monoid monoid = Monoid::enumerate(ts);
    const RefMonoid ref = reference_enumerate(ts);

    ASSERT_EQ(monoid.size(), ref.elements.size());
    const std::size_t num_inputs = ts.num_inputs();
    for (std::size_t e = 0; e < monoid.size(); ++e) {
      // Both enumerations BFS in the same order, so indices correspond.
      ASSERT_TRUE(monoid.element(e).same_data(ref.elements[e].data)) << "element " << e;
      EXPECT_EQ(monoid.witness(e), ref.elements[e].witness) << "element " << e;
      EXPECT_EQ(monoid.reversed_index(e), ref.reversed[e]) << "element " << e;
      for (Label sigma = 0; sigma < num_inputs; ++sigma) {
        ASSERT_EQ(monoid.extend(e, sigma), ref.extend[e * num_inputs + sigma])
            << "element " << e << " sigma " << static_cast<int>(sigma);
      }
    }
    // layer_at is a pure function of the extend table + seeds; cross-check
    // a few lengths against a direct BFS over the reference table.
    for (std::size_t length : {1u, 2u, 3u, 7u, 40u}) {
      std::vector<char> in_layer(ref.elements.size(), 0);
      std::vector<std::size_t> layer;
      for (Label sigma = 0; sigma < num_inputs; ++sigma) {
        const std::size_t seed = monoid.of_symbol(sigma);
        if (!in_layer[seed]) {
          in_layer[seed] = 1;
          layer.push_back(seed);
        }
      }
      for (std::size_t l = 2; l <= length; ++l) {
        std::vector<char> seen(ref.elements.size(), 0);
        std::vector<std::size_t> next;
        for (std::size_t e : layer) {
          for (Label sigma = 0; sigma < num_inputs; ++sigma) {
            const std::size_t x = ref.extend[e * num_inputs + sigma];
            if (!seen[x]) {
              seen[x] = 1;
              next.push_back(x);
            }
          }
        }
        layer = std::move(next);
      }
      std::sort(layer.begin(), layer.end());
      EXPECT_EQ(monoid.layer_at(length), layer) << "length " << length;
    }
  }
}

TEST(MonoidDifferential, OfSymbolMatchesSeedElements) {
  for (const PairwiseProblem& problem : differential_workload()) {
    SCOPED_TRACE(problem.name());
    const TransitionSystem ts = TransitionSystem::build(problem);
    const Monoid monoid = Monoid::enumerate(ts);
    for (Label sigma = 0; sigma < ts.num_inputs(); ++sigma) {
      const std::size_t e = monoid.of_symbol(sigma);
      EXPECT_EQ(monoid.of_word({sigma}), e);
      EXPECT_EQ(monoid.element(e).fwd, ts.step(sigma));
      EXPECT_EQ(monoid.witness(e).size(), 1u);
    }
  }
}

TEST(TransitionCanonicalKey, FingerprintsSkeletonNotNames) {
  const TransitionSystem a = TransitionSystem::build(catalog::coloring(3));
  PairwiseProblem renamed = catalog::coloring(3);
  renamed.set_name("renamed");
  const TransitionSystem b = TransitionSystem::build(renamed);
  EXPECT_EQ(a.canonical_key(), b.canonical_key());
  EXPECT_EQ(a.canonical_hash(), b.canonical_hash());
  // The member hash is exactly the free FNV-1a of the key (the form
  // callers use when they already hold the key string).
  EXPECT_EQ(a.canonical_hash(), canonical_hash(a.canonical_key()));

  // Constraints and topology both split the fingerprint: deciders read the
  // topology through a shared monoid's transition system.
  const TransitionSystem more_colors = TransitionSystem::build(catalog::coloring(4));
  EXPECT_NE(a.canonical_key(), more_colors.canonical_key());
  const TransitionSystem path =
      TransitionSystem::build(catalog::coloring(3, Topology::kDirectedPath));
  EXPECT_NE(a.canonical_key(), path.canonical_key());
}

TEST(MonoidDifferential, WitnessReconstructionIsShortest) {
  // Witnesses come from a BFS tree, so |witness(e)| is the BFS depth of e;
  // no shorter word can reach e (a shorter word's element would have been
  // interned earlier in BFS order with that length).
  const PairwiseProblem p =
      hardness::lift_to_undirected(catalog::coloring(3, Topology::kDirectedPath));
  const Monoid monoid = Monoid::enumerate(TransitionSystem::build(p));
  EXPECT_EQ(monoid.size(), 90u);
  // depth[e] via BFS over the extend table.
  std::vector<std::size_t> depth(monoid.size(), 0);
  std::vector<char> seen(monoid.size(), 0);
  std::deque<std::size_t> queue;
  for (Label sigma = 0; sigma < monoid.transitions().num_inputs(); ++sigma) {
    const std::size_t e = monoid.of_symbol(sigma);
    if (!seen[e]) {
      seen[e] = 1;
      depth[e] = 1;
      queue.push_back(e);
    }
  }
  while (!queue.empty()) {
    const std::size_t e = queue.front();
    queue.pop_front();
    for (Label sigma = 0; sigma < monoid.transitions().num_inputs(); ++sigma) {
      const std::size_t x = monoid.extend(e, sigma);
      if (!seen[x]) {
        seen[x] = 1;
        depth[x] = depth[e] + 1;
        queue.push_back(x);
      }
    }
  }
  for (std::size_t e = 0; e < monoid.size(); ++e) {
    const Word w = monoid.witness(e);
    EXPECT_EQ(w.size(), depth[e]) << "element " << e;
    EXPECT_EQ(monoid.of_word(w), e) << "element " << e;
  }
}

}  // namespace
}  // namespace lclpath
