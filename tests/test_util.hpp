// Shared helpers for the lclpath test suites.
#pragma once

#include <vector>

#include "core/rng.hpp"
#include "lcl/catalog.hpp"
#include "lcl/problem.hpp"
#include "lcl/verifier.hpp"

namespace lclpath::testing {

/// Brute-force enumeration of all valid labelings of `inputs` under the
/// pairwise problem (oracle for the DP/matrix machinery). Exponential:
/// keep |inputs| small.
inline std::vector<Word> all_valid_labelings(const PairwiseProblem& problem,
                                             const Word& inputs) {
  std::vector<Word> valid;
  const std::size_t n = inputs.size();
  const std::size_t beta = problem.num_outputs();
  Word out(n, 0);
  while (true) {
    if (verify_pairwise(problem, inputs, out).ok) valid.push_back(out);
    std::size_t i = n;
    bool done = false;
    while (i > 0) {
      --i;
      if (++out[i] < beta) break;
      out[i] = 0;
      if (i == 0) done = true;
    }
    if (done) break;
  }
  return valid;
}

/// A small problem with a nontrivial type structure used across the
/// automata tests: secret agreement has markers, propagation and an
/// escape label.
inline PairwiseProblem automata_fixture(Topology topology = Topology::kDirectedCycle) {
  return catalog::agreement(topology);
}

}  // namespace lclpath::testing
