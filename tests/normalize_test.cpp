#include <gtest/gtest.h>

#include "lcl/normalize.hpp"
#include "test_util.hpp"

namespace lclpath {
namespace {

// Lemma 2: the V_in,in-out,out -> V_in-out + V_out-out construction.
TEST(Lemma2, EdgeVerifierCompilesToPairwise) {
  // "output equals the predecessor's input" — needs the full edge view.
  EdgeVerifierProblem source;
  source.name = "copy-pred-input";
  source.inputs = Alphabet({"0", "1"});
  source.outputs = Alphabet({"g0", "g1"});
  source.topology = Topology::kDirectedCycle;
  source.node_ok = [](Label, Label) { return true; };
  source.edge_ok = [](Label in_u, Label, Label, Label out_v) { return out_v == in_u; };

  const PairwiseProblem compiled = normalize_edge_verifier(source);
  EXPECT_EQ(compiled.num_outputs(), 4u);  // alpha * beta

  // Instance 0 1 1 0: outputs must copy the predecessor's input, and the
  // compiled outputs must carry the node's own input truthfully.
  const Word inputs{0, 1, 1, 0};
  const auto solved = solve_by_dp(compiled, inputs);
  ASSERT_TRUE(solved.has_value());
  // Decode: output label = in * beta + out.
  const std::size_t beta = source.outputs.size();
  for (std::size_t v = 0; v < inputs.size(); ++v) {
    const Label in_copy = (*solved)[v] / beta;
    const Label out = (*solved)[v] % beta;
    EXPECT_EQ(in_copy, inputs[v]) << v;
    EXPECT_EQ(out, inputs[(v + inputs.size() - 1) % inputs.size()]) << v;
  }
}

// Lemma 3 / Figure 3: binary normalization.
TEST(Lemma3, EncodingLayoutMatchesFigure3) {
  const PairwiseProblem original = catalog::agreement(Topology::kDirectedPath);
  const BinaryNormalized normalized = normalize_binary(original);
  // alpha = 3 -> a = 2, gamma = 7.
  EXPECT_EQ(normalized.bits_per_input, 2u);
  EXPECT_EQ(normalized.gamma, 7u);
  EXPECT_EQ(normalized.problem.num_inputs(), 2u);
  // beta' = 2^gamma * (beta + 3).
  EXPECT_EQ(normalized.problem.num_outputs(),
            (std::size_t{1} << 7) * (original.num_outputs() + 3));

  const Word encoded = normalized.encode_inputs({2});  // input "0" of agreement
  // 1 1 1 0 b b 0 with payload bits of label 2 = "10".
  EXPECT_EQ(encoded, (Word{1, 1, 1, 0, 1, 0, 0}));
}

TEST(Lemma3, ValidEncodingsSolveAndDecode) {
  const PairwiseProblem original = catalog::agreement(Topology::kDirectedPath);
  const BinaryNormalized normalized = normalize_binary(original);
  Rng rng(42);
  for (int trial = 0; trial < 5; ++trial) {
    Word inputs;
    const std::size_t n = 2 + rng.next_below(4);
    for (std::size_t v = 0; v < n; ++v) {
      inputs.push_back(static_cast<Label>(rng.next_below(original.num_inputs())));
    }
    const Word encoded = normalized.encode_inputs(inputs);
    const auto solved = solve_by_dp(normalized.problem, encoded);
    ASSERT_TRUE(solved.has_value()) << word_to_string(original.inputs(), inputs);
    EXPECT_TRUE(verify_pairwise(normalized.problem, encoded, *solved).ok);
    const Word decoded = normalized.decode_outputs(*solved);
    ASSERT_EQ(decoded.size(), inputs.size());
    EXPECT_TRUE(verify_pairwise(original, inputs, decoded).ok)
        << word_to_string(original.inputs(), inputs) << " -> "
        << word_to_string(original.outputs(), decoded);
  }
}

TEST(Lemma3, GarbageInputsEscapeWithErrors) {
  const PairwiseProblem original = catalog::agreement(Topology::kDirectedPath);
  const BinaryNormalized normalized = normalize_binary(original);
  // An input word that is not a valid Figure-3 encoding (no 1^{a+1} 0
  // group structure anywhere) must still be solvable via E/El/Er.
  const Word garbage{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  const auto solved = solve_by_dp(normalized.problem, garbage);
  ASSERT_TRUE(solved.has_value());
  EXPECT_TRUE(verify_pairwise(normalized.problem, garbage, *solved).ok);
}

TEST(Lemma3, SolvabilityIsPreservedOnEncodings) {
  // two_coloring on paths is always solvable; its binary normalization
  // must be solvable on every valid encoding.
  const PairwiseProblem original = catalog::two_coloring(Topology::kDirectedPath);
  const BinaryNormalized normalized = normalize_binary(original);
  for (std::size_t n : {1u, 2u, 5u}) {
    const Word inputs(n, 0);
    const Word encoded = normalized.encode_inputs(inputs);
    const auto solved = solve_by_dp(normalized.problem, encoded);
    ASSERT_TRUE(solved.has_value()) << "n=" << n;
    const Word decoded = normalized.decode_outputs(*solved);
    EXPECT_TRUE(verify_pairwise(original, inputs, decoded).ok);
  }
}

TEST(Lemma3, RejectsCycles) {
  EXPECT_THROW(normalize_binary(catalog::coloring(3)), std::invalid_argument);
}

}  // namespace
}  // namespace lclpath
